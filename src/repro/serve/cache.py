"""The shared query-result cache: LRU in entries *and* bytes.

Results are cached under a key that combines the *normalized query*
(``op`` plus its semantically relevant parameters, canonical JSON) with
the *epochs* of everything the query read: the catalog epoch of the
:class:`~repro.db.SpatialDatabase` plus the mutation epoch of every
relation involved.  :meth:`~repro.db.SpatialRelation.insert` and
:meth:`~repro.db.SpatialRelation.delete` bump the relation epoch, so a
mutation instantly makes every previously cached result for that
relation unreachable — stale results are never *served*; the dead
entries age out through normal LRU eviction.

Under MVCC ingest (see :mod:`repro.db.relation`) the service stores a
second level in the same cache: ``<op>@base`` entries stamped with each
snapshot's ``base_epoch`` instead of its mutation epoch.  Delta writes
bump only the mutation epoch, so the expensive base-tree computation
stays cached across writes and a post-write read replays just the
delta overlay — this is what keeps the hit rate high under mixed
read/write workloads, where an invalidate-on-every-write cache would
sit near zero.

Capacity is bounded two ways, as real result caches are: a maximum
entry count (lookup-table pressure) and a maximum payload byte total
(memory pressure).  A single result larger than the byte budget is
simply not admitted.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from typing import Any, Dict, Iterable, Optional, Tuple


def normalized_key(op: str, params: Optional[Dict[str, Any]],
                   epochs: Iterable[Tuple[str, int]],
                   catalog_epoch: int, *,
                   params_json: Optional[str] = None) -> str:
    """The canonical cache key of one query.

    *params* must already exclude per-request noise (request id,
    deadline); *epochs* is an iterable of ``(relation_name, epoch)``
    pairs for every relation the query reads.  *params_json* is an
    optional pre-serialized (sorted-keys) form of *params* — the hot
    read path canonicalizes the parameters once and builds both its
    cache keys from the same string.
    """
    if params_json is None:
        params_json = json.dumps(params, sort_keys=True)
    stamp = ",".join(f"{name}#{epoch}" for name, epoch in epochs)
    return f"{op}|{params_json}@cat{catalog_epoch}:{stamp}"


class ResultCache:
    """Thread-safe LRU cache of JSON-ready result payloads."""

    def __init__(self, max_entries: int = 4096,
                 max_bytes: int = 64 << 20) -> None:
        if max_entries < 0 or max_bytes < 0:
            raise ValueError("cache capacities cannot be negative")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        #: key -> (payload, nbytes); insertion order is recency order.
        self._entries: "OrderedDict[str, Tuple[Any, int]]" = OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    # Lookup / admission
    # ------------------------------------------------------------------

    def get(self, key: str) -> Optional[Any]:
        """The cached payload, or None; a hit refreshes recency."""
        with self._lock:
            cell = self._entries.get(key)
            if cell is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return cell[0]

    def put(self, key: str, payload: Any,
            nbytes: Optional[int] = None) -> bool:
        """Admit *payload*; returns False when it exceeds the byte
        budget outright (the cache is left untouched then)."""
        if nbytes is None:
            nbytes = len(json.dumps(payload))
        if nbytes > self.max_bytes or self.max_entries == 0:
            return False
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old[1]
            self._entries[key] = (payload, nbytes)
            self._bytes += nbytes
            while (len(self._entries) > self.max_entries
                   or self._bytes > self.max_bytes):
                _, (_, dropped) = self._entries.popitem(last=False)
                self._bytes -= dropped
                self.evictions += 1
        return True

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def entries(self) -> int:
        return len(self._entries)

    @property
    def bytes(self) -> int:
        return self._bytes

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ResultCache({self.entries}/{self.max_entries} entries, "
                f"{self.bytes}/{self.max_bytes} bytes, "
                f"{self.hits} hits/{self.misses} misses)")
