"""repro.serve — the concurrent spatial query service.

Everything below the library boundary runs one query at a time; this
package is the long-lived serving layer on top of
:class:`~repro.db.SpatialDatabase`: a multi-client TCP server (plus an
in-process client) exposing join, window, and kNN queries and online
insert/delete through a line-oriented JSON protocol, with

* a worker-pool scheduler with **admission control** — bounded queue,
  per-request deadlines, load shedding
  (:mod:`repro.serve.scheduler`),
* a shared **result cache** — LRU in entries and bytes, keyed by
  normalized query + relation epochs so mutations invalidate instantly
  (:mod:`repro.serve.cache`),
* per-request **observability** — ``serve.request`` spans and
  ``serve.*`` metrics in the same registry ``repro report`` renders
  (:mod:`repro.obs`).

Quickstart::

    from repro.db import SpatialDatabase
    from repro.serve import QueryService, SpatialQueryServer

    db = SpatialDatabase.open("catalog/")
    service = QueryService(db, workers=4, queue_depth=64)
    with SpatialQueryServer(service, port=7421) as server:
        host, port = server.address
        ...  # clients connect; see docs/serving.md

Everything is stdlib-only; see ``docs/serving.md`` for the protocol.
"""

from .cache import ResultCache, normalized_key
from .protocol import (E_BAD_REQUEST, E_CATALOG, E_INTERNAL,
                       E_OVERLOADED, E_QUERY, E_TIMEOUT, ProtocolError,
                       decode_request, encode_line, error_code_for,
                       error_response, geometry_from_json,
                       geometry_to_json, ok_response)
from .scheduler import RequestScheduler
from .server import (ServiceClient, SpatialQueryServer, TCPServiceClient,
                     decode_response)
from .service import (QueryService, ReadWriteLock, cache_section,
                      latency_section)

__all__ = [
    "E_BAD_REQUEST",
    "E_CATALOG",
    "E_INTERNAL",
    "E_OVERLOADED",
    "E_QUERY",
    "E_TIMEOUT",
    "ProtocolError",
    "QueryService",
    "ReadWriteLock",
    "RequestScheduler",
    "ResultCache",
    "ServiceClient",
    "SpatialQueryServer",
    "TCPServiceClient",
    "cache_section",
    "decode_request",
    "decode_response",
    "encode_line",
    "error_code_for",
    "error_response",
    "geometry_from_json",
    "geometry_to_json",
    "latency_section",
    "normalized_key",
    "ok_response",
]
