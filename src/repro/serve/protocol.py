"""The line-oriented JSON wire protocol of the query service.

One request per line, one response per line, UTF-8 JSON::

    -> {"id": 7, "op": "join", "left": "streets", "right": "rivers"}
    <- {"id": 7, "ok": true, "cached": false, "result": {...}}

    -> {"id": 8, "op": "nope"}
    <- {"id": 8, "ok": false,
        "error": {"code": "bad_request", "message": "unknown op 'nope'"}}

Requests carry an ``op`` discriminator plus op-specific parameters and
two optional envelope fields: ``id`` (opaque, echoed back verbatim) and
``timeout_ms`` (per-request deadline override).  Responses echo ``id``
and carry either ``result`` (with ``ok: true``) or ``error`` (with
``ok: false``).  Error codes are the stable ``code`` attributes of the
:mod:`repro.errors` hierarchy plus the protocol-level ``bad_request``;
see ``docs/serving.md`` for the full request/response catalogue.

Geometry travels as ``{"kind": "rect"|"polyline"|"polygon",
"coords": [...]}`` — flat ``[xl, yl, xu, yu]`` for rectangles,
``[[x, y], ...]`` vertex lists otherwise — mirroring the ``.geom``
persistence format of :mod:`repro.db.database`.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Union

from ..errors import (CatalogError, OverloadedError, QueryError,
                      QueryTimeout, ReproError)
from ..geometry.polygon import Polygon
from ..geometry.polyline import Polyline
from ..geometry.rect import Rect

#: Protocol-level error codes (superset of the repro.errors codes).
E_BAD_REQUEST = "bad_request"
E_CATALOG = CatalogError.code
E_QUERY = QueryError.code
E_TIMEOUT = QueryTimeout.code
E_OVERLOADED = OverloadedError.code
E_INTERNAL = ReproError.code


class ProtocolError(QueryError):
    """A request line that cannot be mapped onto an operation."""

    code = E_BAD_REQUEST


def error_code_for(exc: BaseException) -> str:
    """The wire error code of an exception (no string matching: the
    repro hierarchy carries its code; everything else is internal)."""
    if isinstance(exc, ReproError):
        return exc.code
    if isinstance(exc, TimeoutError):
        return E_TIMEOUT
    return E_INTERNAL


# ----------------------------------------------------------------------
# Envelopes
# ----------------------------------------------------------------------

def decode_request(line: Union[str, bytes]) -> Dict[str, Any]:
    """Parse one request line; raises :class:`ProtocolError`."""
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"request is not UTF-8: {exc}") from None
    try:
        request = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"request is not JSON: {exc.msg}") from None
    if not isinstance(request, dict):
        raise ProtocolError("request must be a JSON object")
    op = request.get("op")
    if not isinstance(op, str) or not op:
        raise ProtocolError("request needs a string 'op' field")
    return request


def ok_response(request_id: Any, result: Any,
                **extra: Any) -> Dict[str, Any]:
    response: Dict[str, Any] = {"id": request_id, "ok": True,
                                "result": result}
    response.update(extra)
    return response


def error_response(request_id: Any, code: str,
                   message: str) -> Dict[str, Any]:
    return {"id": request_id, "ok": False,
            "error": {"code": code, "message": message}}


def encode_line(message: Dict[str, Any]) -> bytes:
    """One message (request or response) as a newline-terminated
    UTF-8 JSON line."""
    return (json.dumps(message, sort_keys=True,
                       separators=(",", ":")) + "\n").encode("utf-8")


#: Both directions share one encoding.
encode_request = encode_response = encode_line


# ----------------------------------------------------------------------
# Geometry codecs
# ----------------------------------------------------------------------

Geometry = Union[Rect, Polyline, Polygon]


def geometry_to_json(geometry: Geometry) -> Dict[str, Any]:
    if isinstance(geometry, Rect):
        return {"kind": "rect", "coords": [geometry.xl, geometry.yl,
                                           geometry.xu, geometry.yu]}
    kind = "polygon" if isinstance(geometry, Polygon) else "polyline"
    return {"kind": kind,
            "coords": [[x, y] for x, y in geometry.vertices]}


def geometry_from_json(data: Any) -> Geometry:
    """Decode a geometry object; raises :class:`ProtocolError`."""
    if not isinstance(data, dict):
        raise ProtocolError("geometry must be a JSON object")
    kind = data.get("kind")
    coords = data.get("coords")
    if kind == "rect":
        if (not isinstance(coords, list) or len(coords) != 4
                or not all(isinstance(c, (int, float))
                           and not isinstance(c, bool) for c in coords)):
            raise ProtocolError("rect needs 4 numeric coords")
        return Rect(*(float(c) for c in coords))
    if kind in ("polyline", "polygon"):
        if (not isinstance(coords, list)
                or any(not isinstance(p, (list, tuple)) or len(p) != 2
                       for p in coords)):
            raise ProtocolError(f"{kind} needs a list of [x, y] pairs")
        points = [(float(x), float(y)) for x, y in coords]
        try:
            return (Polygon(points) if kind == "polygon"
                    else Polyline(points))
        except ValueError as exc:
            raise ProtocolError(f"bad {kind}: {exc}") from None
    raise ProtocolError(f"unknown geometry kind {kind!r}")
