"""The worker-pool request scheduler with admission control.

Requests enter a *bounded* queue and are executed by a fixed pool of
worker threads.  Three protections keep an overloaded server degrading
predictably instead of collapsing:

* **Load shedding** — :meth:`RequestScheduler.submit` never blocks: a
  full queue rejects the request immediately with
  :class:`~repro.errors.OverloadedError` (counted as ``serve.shed``),
  so clients get instant backpressure instead of timing out one by one.
* **Deadlines** — every request carries an absolute monotonic deadline.
  A request whose deadline passed while it sat in the queue is failed
  with :class:`~repro.errors.QueryTimeout` *without executing*
  (``serve.deadline_expired``); executing work enforces the same
  deadline cooperatively via ``JoinSpec.timeout``.
* **Retries** — transient worker failures
  (:class:`~repro.storage.faults.TransientIOError`, the same class the
  buffer manager retries at page granularity) are retried up to
  ``max_retries`` times with the counted exponential backoff of the
  storage layer: the would-be delay is recorded in
  ``serve.retry_backoff_ticks`` instead of slept.

Observability mirrors the queue into the shared registry: the
``serve.queue_depth`` gauge, ``serve.wait_ms``/``serve.exec_ms``
histograms, and the shed/expiry/retry counters.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from typing import Callable, Optional, Tuple, Type

from ..errors import OverloadedError, QueryTimeout
from ..obs.core import NULL_OBS, Observability
from ..storage.faults import TransientIOError


class _Job:
    """One queued request: the callable plus its admission metadata."""

    __slots__ = ("fn", "future", "enqueued_at", "deadline")

    def __init__(self, fn: Callable[[], object],
                 deadline: Optional[float]) -> None:
        self.fn = fn
        self.future: "Future[object]" = Future()
        self.enqueued_at = time.perf_counter()
        self.deadline = deadline


class RequestScheduler:
    """Bounded-queue worker pool executing submitted callables."""

    def __init__(self, workers: int = 4, queue_depth: int = 64,
                 max_retries: int = 2, backoff_base: int = 1,
                 retryable: Tuple[Type[BaseException], ...] =
                 (TransientIOError,),
                 obs: Optional[Observability] = None) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1 ({workers})")
        if queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1 ({queue_depth})")
        if max_retries < 0:
            raise ValueError(
                f"max_retries cannot be negative ({max_retries})")
        self.workers = workers
        self.queue_depth = queue_depth
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.retryable = retryable
        self.obs = obs if obs is not None else NULL_OBS
        self._queue: "queue.Queue[Optional[_Job]]" = queue.Queue(
            maxsize=queue_depth)
        self._threads = [
            threading.Thread(target=self._worker_loop,
                             name=f"serve-worker-{i}", daemon=True)
            for i in range(workers)]
        self._closed = False
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------

    def submit(self, fn: Callable[[], object],
               deadline: Optional[float] = None) -> "Future[object]":
        """Enqueue *fn*; raises :class:`OverloadedError` when full."""
        if self._closed:
            raise RuntimeError("scheduler is shut down")
        job = _Job(fn, deadline)
        try:
            self._queue.put_nowait(job)
        except queue.Full:
            if self.obs.enabled:
                self.obs.metrics.inc("serve.shed")
            raise OverloadedError(
                f"request queue full ({self.queue_depth} pending); "
                "retry with backoff") from None
        if self.obs.enabled:
            self.obs.metrics.set_gauge("serve.queue_depth",
                                       self._queue.qsize())
        return job.future

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:          # shutdown sentinel
                return
            now = time.perf_counter()
            if self.obs.enabled:
                self.obs.metrics.set_gauge("serve.queue_depth",
                                           self._queue.qsize())
                self.obs.metrics.observe(
                    "serve.wait_ms", (now - job.enqueued_at) * 1e3)
            if not job.future.set_running_or_notify_cancel():
                continue
            if job.deadline is not None and now > job.deadline:
                if self.obs.enabled:
                    self.obs.metrics.inc("serve.deadline_expired")
                job.future.set_exception(QueryTimeout(
                    "deadline expired while the request was queued"))
                continue
            self._run(job)

    def _run(self, job: _Job) -> None:
        start = time.perf_counter()
        attempt = 0
        while True:
            try:
                result = job.fn()
            except self.retryable as exc:
                if attempt >= self.max_retries:
                    job.future.set_exception(exc)
                    break
                # Counted exponential backoff, like the buffer
                # manager's page retries: recorded, never slept.
                ticks = self.backoff_base << attempt
                attempt += 1
                if self.obs.enabled:
                    self.obs.metrics.inc("serve.retries")
                    self.obs.metrics.observe("serve.retry_backoff_ticks",
                                             ticks)
                continue
            except BaseException as exc:
                job.future.set_exception(exc)
                break
            else:
                job.future.set_result(result)
                break
        if self.obs.enabled:
            self.obs.metrics.observe(
                "serve.exec_ms", (time.perf_counter() - start) * 1e3)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Requests currently queued (racy snapshot, for tests/UI)."""
        return self._queue.qsize()

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work and (optionally) drain the workers."""
        if self._closed:
            return
        self._closed = True
        for _ in self._threads:
            self._queue.put(None)
        if wait:
            for thread in self._threads:
                thread.join(timeout=10.0)
