"""The query service: operations over a shared :class:`SpatialDatabase`.

:class:`QueryService` is the transport-independent core of the server:
it validates decoded protocol requests, runs them through the
admission-controlled scheduler, consults the epoch-keyed result cache,
and maps every failure onto a stable protocol error code.  The TCP
front end (:mod:`repro.serve.server`) and the in-process
:class:`~repro.serve.server.ServiceClient` both speak to this class.

Concurrency model
-----------------

The service runs the database in MVCC delta ingest mode by default
(``ingest="delta"``, see :mod:`repro.db.relation`): mutations absorb
into per-relation write buffers and queries read immutable snapshots,
so **reads take no lock at all** — the :class:`ReadWriteLock` shrinks
to guarding the write-side critical sections (mutations, snapshot
swaps by the background rebuilder, the shutdown checkpoint).  Every
lock acquisition is timed into the ``serve.lock.read_wait_ms`` /
``serve.lock.write_wait_ms`` histograms; an empty read histogram under
MVCC is the expected steady state.  With ``ingest="direct"`` the
pre-MVCC regime applies: queries (``join``/``window``/``knn``/``get``)
hold the shared read lock, mutations the exclusive write lock.

A background rebuilder thread merges accumulated deltas into fresh STR
bulk-loaded trees (``rebuild_threshold`` pending ops, or every
``rebuild_every`` seconds) and swaps them in atomically under the
write lock, then checkpoints so the write-ahead log stays short.

Joins are executed with ``sort_mode="on_read"``, whose sorted views
live in the per-join context instead of being written back into the
shared tree nodes — so concurrent readers never mutate shared state.
(The default ``maintained`` regime physically sorts node entry lists
in place, which would race across reader threads.)

Caching is two-level: the full epoch-stamped key (any write to a
touched relation invalidates — this is what the envelope ``cached``
flag reports) plus a ``<op>@base`` key stamped with the relations'
``base_epoch``, holding the expensive base-tree computation of joins
and window queries.  Delta writes leave ``base_epoch`` alone, so after
a write the service re-runs only the cheap delta overlay on top of a
base-cache hit instead of the whole join.

Every request carries a ``serve.request`` span on the server's
:class:`~repro.obs.Observability` handle and feeds the ``serve.*``
counters/histograms; the handle's registry is the same one `repro
report` renders, so server traffic shows up next to the join metrics.
"""

from __future__ import annotations

import contextlib
import json
import threading
import time
from concurrent.futures import TimeoutError as FuturesTimeout
from typing import (TYPE_CHECKING, Any, Callable, Dict, List, Optional,
                    Tuple)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..db.durability import DurabilityManager

from ..core.spec import JoinSpec
from ..core.stats import JoinResult, JoinStatistics
from ..db.database import SpatialDatabase
from ..db.relation import INGEST_MODES, exact_window_survivors
from ..errors import QueryError, QueryTimeout
from ..geometry.predicates import SpatialPredicate
from ..geometry.rect import Rect
from ..obs.core import Observability
from ..plan.registry import algorithm_choices
from .cache import ResultCache, normalized_key
from .protocol import (ProtocolError, error_code_for, error_response,
                       geometry_from_json, geometry_to_json, ok_response)
from .scheduler import RequestScheduler

#: Fields every request may carry that do not affect the result (and
#: therefore never enter the cache key).
_ENVELOPE_FIELDS = ("id", "op", "timeout_ms", "_params_json")


class ReadWriteLock:
    """Readers-writer lock with writer preference.

    Many readers or one writer; arriving writers block new readers so
    a steady query stream cannot starve mutations.  Shared by the
    single-process :class:`QueryService` and the
    :class:`~repro.shard.router.ShardRouter` (whose fan-out mutations
    must not interleave with fanned-out reads).
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    @contextlib.contextmanager
    def read(self):
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if self._readers == 0:
                    self._cond.notify_all()

    @contextlib.contextmanager
    def write(self):
        with self._cond:
            self._writers_waiting += 1
            while self._writer or self._readers:
                self._cond.wait()
            self._writers_waiting -= 1
            self._writer = True
        try:
            yield
        finally:
            with self._cond:
                self._writer = False
                self._cond.notify_all()


class QueryService:
    """Validated, scheduled, cached operations over one database."""

    def __init__(self, db: SpatialDatabase, workers: int = 4,
                 queue_depth: int = 64, cache_entries: int = 4096,
                 cache_bytes: int = 64 << 20,
                 default_timeout: Optional[float] = 30.0,
                 max_retries: int = 2,
                 obs: Optional[Observability] = None,
                 durability: Optional["DurabilityManager"] = None,
                 slow_ms: Optional[float] = None,
                 slow_log: Optional[Callable[[str], None]] = None,
                 ingest: str = "delta",
                 rebuild_threshold: Optional[int] = 512,
                 rebuild_every: Optional[float] = None
                 ) -> None:
        self.db = db
        if ingest not in INGEST_MODES:
            raise ValueError(f"unknown ingest mode {ingest!r}; "
                             f"expected one of {INGEST_MODES}")
        if rebuild_threshold is not None and rebuild_threshold < 1:
            raise ValueError("rebuild_threshold must be >= 1 (or None)")
        if rebuild_every is not None and rebuild_every <= 0:
            raise ValueError("rebuild_every must be positive (or None)")
        #: Ingest regime (see the module docstring): ``"delta"`` runs
        #: reads lock-free over MVCC snapshots, ``"direct"`` restores
        #: the read-locked in-place-mutation behaviour.
        self.ingest = ingest
        self._mvcc = ingest == "delta"
        db.set_ingest_mode(ingest)
        #: Pending delta operations that trigger a background merge.
        self.rebuild_threshold = rebuild_threshold
        #: Periodic merge interval in seconds (None: threshold only).
        self.rebuild_every = rebuild_every
        self.rebuilds = 0
        #: Requests slower than this many milliseconds are counted in
        #: ``serve.slow_requests`` and logged through *slow_log*
        #: (default: a line on stderr).  None disables the check.
        self.slow_ms = slow_ms
        self.slow_log = slow_log if slow_log is not None \
            else _default_slow_log
        #: Optional :class:`~repro.db.durability.DurabilityManager`.
        #: Mutations already write ahead through the database hooks;
        #: the service only surfaces its status (``stats``) and drives
        #: the final checkpoint on :meth:`close`.  Mutations run under
        #: the exclusive write lock, so checkpoints always snapshot a
        #: fully-applied catalog.
        self.durability = durability
        self.obs = obs if obs is not None else Observability()
        self.cache = ResultCache(max_entries=cache_entries,
                                 max_bytes=cache_bytes)
        self.scheduler = RequestScheduler(workers=workers,
                                          queue_depth=queue_depth,
                                          max_retries=max_retries,
                                          obs=self.obs)
        self.default_timeout = default_timeout
        self._lock = ReadWriteLock()
        #: op -> (handler(request, deadline) -> result payload,
        #:        cacheable) — extension point for tests and embedders.
        self._ops: Dict[str, Tuple[Callable[[Dict[str, Any],
                                             Optional[float]], Any],
                                   bool]] = {}
        for name, cacheable in (("join", True), ("explain", True),
                                ("window", True),
                                ("knn", True), ("get", True),
                                ("insert", False), ("delete", False),
                                ("create", False), ("drop", False)):
            self._ops[name] = (getattr(self, f"_op_{name}"), cacheable)
        self._rebuild_stop = threading.Event()
        self._rebuilder: Optional[threading.Thread] = None
        if self._mvcc and (rebuild_threshold is not None
                           or rebuild_every is not None):
            self._rebuilder = threading.Thread(
                target=self._rebuild_loop, name="repro-rebuild",
                daemon=True)
            self._rebuilder.start()

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def handle(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Execute one decoded request; always returns a response
        envelope (errors are responses, never exceptions)."""
        request_id = request.get("id")
        op = request.get("op")
        started = time.perf_counter()
        if self.obs.enabled:
            self.obs.metrics.inc("serve.requests")
            self.obs.metrics.inc(f"serve.op.{op}")
        try:
            with self.obs.tracer.span("serve.request", op=str(op)):
                response = self._dispatch(request, request_id, op)
        except BaseException as exc:  # noqa: BLE001 — protocol boundary
            if self.obs.enabled:
                self.obs.metrics.inc("serve.errors")
            response = error_response(request_id, error_code_for(exc),
                                      str(exc) or type(exc).__name__)
        elapsed_ms = (time.perf_counter() - started) * 1e3
        if self.obs.enabled:
            self.obs.metrics.observe("serve.time_ms", elapsed_ms)
            if not response.get("ok"):
                code = response["error"]["code"]
                self.obs.metrics.inc(f"serve.error.{code}")
        if self.slow_ms is not None and elapsed_ms >= self.slow_ms:
            if self.obs.enabled:
                self.obs.metrics.inc("serve.slow_requests")
            self.slow_log(
                f"slow request: op={op} {elapsed_ms:.1f} ms >= "
                f"{self.slow_ms:g} ms (id={request_id}, "
                f"ok={str(bool(response.get('ok'))).lower()})")
        return response

    def _dispatch(self, request: Dict[str, Any], request_id: Any,
                  op: Any) -> Dict[str, Any]:
        if op == "ping":
            return ok_response(request_id, "pong")
        if op == "stats":
            return ok_response(request_id, self.metrics_snapshot())
        if op == "relations":
            return ok_response(request_id, self._op_relations())
        entry = self._ops.get(op)
        if entry is None:
            raise ProtocolError(f"unknown op {op!r}")
        handler, cacheable = entry
        deadline = self._deadline_of(request)
        # Admission control happens here: a full queue raises
        # OverloadedError straight back to the caller.
        future = self.scheduler.submit(
            lambda: self._execute(handler, cacheable, request, deadline),
            deadline=deadline)
        remaining = (None if deadline is None
                     else max(0.0, deadline - time.perf_counter()))
        try:
            # Small grace on top of the deadline: the worker enforces
            # the deadline itself (queue expiry + JoinSpec.timeout), so
            # this wait normally ends with a QueryTimeout result; the
            # grace only covers ops without cooperative checks.
            payload, cached = future.result(timeout=(
                None if remaining is None else remaining + 1.0))
        except FuturesTimeout:
            if self.obs.enabled:
                self.obs.metrics.inc("serve.deadline_expired")
            raise QueryTimeout(
                "request did not finish before its deadline") from None
        return ok_response(request_id, payload, cached=cached)

    def _deadline_of(self, request: Dict[str, Any]) -> Optional[float]:
        timeout_ms = request.get("timeout_ms")
        if timeout_ms is None:
            timeout = self.default_timeout
        else:
            if (not isinstance(timeout_ms, (int, float))
                    or isinstance(timeout_ms, bool) or timeout_ms <= 0):
                raise ProtocolError(
                    f"timeout_ms must be a positive number "
                    f"({timeout_ms!r})")
            timeout = timeout_ms / 1e3
        if timeout is None:
            return None
        return time.perf_counter() + timeout

    # ------------------------------------------------------------------
    # Worker-side execution: cache, locks, handlers
    # ------------------------------------------------------------------

    def _execute(self, handler: Callable, cacheable: bool,
                 request: Dict[str, Any],
                 deadline: Optional[float]) -> Tuple[Any, bool]:
        key = self._cache_key(request) if cacheable else None
        if key is not None:
            payload = self.cache.get(key)
            if payload is not None:
                if self.obs.enabled:
                    self.obs.metrics.inc("serve.cache.hits")
                return payload, True
            if self.obs.enabled:
                self.obs.metrics.inc("serve.cache.misses")
        if cacheable and self._mvcc:
            # MVCC read path: no lock at all.  The handler grabs one
            # immutable snapshot per relation (a single reference
            # read) and never touches shared mutable state.
            payload = handler(request, deadline)
        else:
            with self._locked(write=not cacheable):
                payload = handler(request, deadline)
        if key is not None:
            self.cache.put(key, payload,
                           nbytes=len(json.dumps(payload)))
        return payload, False

    @contextlib.contextmanager
    def _locked(self, write: bool):
        """Acquire the service lock, timing how long the acquisition
        blocked into ``serve.lock.read_wait_ms`` /
        ``serve.lock.write_wait_ms`` (lock contention is invisible in
        request latency alone — these histograms are how ``repro
        report`` shows where waiting went)."""
        guard = self._lock.write() if write else self._lock.read()
        started = time.perf_counter()
        guard.__enter__()
        if self.obs.enabled:
            waited_ms = (time.perf_counter() - started) * 1e3
            name = ("serve.lock.write_wait_ms" if write
                    else "serve.lock.read_wait_ms")
            self.obs.metrics.observe(name, waited_ms)
        try:
            yield
        finally:
            guard.__exit__(None, None, None)

    def _base_cached(self, op: str, request: Dict[str, Any],
                     snapshots: Tuple, compute: Callable[[], Any]) -> Any:
        """Second cache level for expensive base-tree computations.

        The key is the request's parameters stamped with each
        snapshot's ``base_epoch`` (not ``epoch``): delta writes
        invalidate the full-key entry but leave these intact, so a
        read after a write replays only the delta overlay on top of
        the cached base result.  Shares the one :class:`ResultCache`
        (and its hit/miss accounting) with the full-key level.
        """
        params_json = request.get("_params_json")
        if not isinstance(params_json, str):
            params_json = json.dumps(
                {name: value for name, value in request.items()
                 if name not in _ENVELOPE_FIELDS}, sort_keys=True)
        epochs = [(snap.name, snap.base_epoch) for snap in snapshots]
        key = normalized_key(f"{op}@base", None, epochs,
                             self.db.epoch, params_json=params_json)
        payload = self.cache.get(key)
        if payload is not None:
            if self.obs.enabled:
                self.obs.metrics.inc("serve.cache.base_hits")
            return payload
        if self.obs.enabled:
            self.obs.metrics.inc("serve.cache.base_misses")
        payload = compute()
        self.cache.put(key, payload, nbytes=len(json.dumps(payload)))
        return payload

    def _cache_key(self, request: Dict[str, Any]) -> Optional[str]:
        """The epoch-stamped cache key (None disables caching, e.g.
        for a registered custom op without a relation signature)."""
        op = request["op"]
        params = {name: value for name, value in request.items()
                  if name not in _ENVELOPE_FIELDS}
        # Canonicalize once; _base_cached builds the base-level key
        # from the same string (the stash is an envelope field, so it
        # can never leak into either key's parameter body).
        params_json = json.dumps(params, sort_keys=True)
        request["_params_json"] = params_json
        names: List[str] = []
        for field in ("relation", "left", "right"):
            value = request.get(field)
            if isinstance(value, str):
                names.append(value)
        epochs = []
        for name in names:
            relation = self.db.relations.get(name)
            # Unknown relation: let the handler raise CatalogError.
            epochs.append((name, -1 if relation is None
                           else relation.epoch))
        return normalized_key(op, None, epochs, self.db.epoch,
                              params_json=params_json)

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def register_op(self, name: str,
                    handler: Callable[[Dict[str, Any], Optional[float]],
                                      Any],
                    cacheable: bool = False) -> None:
        """Register a custom operation (tests, embedders).

        *handler* receives the raw request dict and the absolute
        monotonic deadline (or None) and returns a JSON-ready payload.
        """
        if name in ("ping", "stats", "relations"):
            raise ValueError(f"cannot override built-in op {name!r}")
        self._ops[name] = (handler, cacheable)

    def _op_relations(self) -> List[Dict[str, Any]]:
        return [{"name": name, "objects": len(relation),
                 "epoch": relation.epoch,
                 "height": relation.tree.height,
                 "pending_delta_ops": relation.delta_ops_pending}
                for name, relation in sorted(self.db.relations.items())]

    def _join_spec(self, request: Dict[str, Any],
                   deadline: Optional[float],
                   default_algorithm: str = "sj4") -> JoinSpec:
        """Validated :class:`JoinSpec` for a join/explain request.

        The algorithm name is checked against the
        :mod:`repro.plan.registry` choices (which include "auto") so
        the protocol accepts exactly what the CLI does.
        """
        algorithm = request.get("algorithm", default_algorithm)
        if not isinstance(algorithm, str) \
                or algorithm.lower() not in algorithm_choices():
            raise QueryError(
                f"algorithm must be one of "
                f"{', '.join(algorithm_choices())} ({algorithm!r})")
        buffer_kb = request.get("buffer_kb", 128.0)
        predicate = request.get("predicate", "intersects")
        if not isinstance(buffer_kb, (int, float)) \
                or isinstance(buffer_kb, bool) or buffer_kb < 0:
            raise ProtocolError(f"buffer_kb must be a non-negative "
                                f"number ({buffer_kb!r})")
        try:
            return JoinSpec(algorithm=algorithm,
                            buffer_kb=float(buffer_kb),
                            predicate=SpatialPredicate(predicate),
                            sort_mode="on_read",
                            timeout=_remaining(deadline))
        except ValueError as exc:
            raise QueryError(str(exc)) from None

    def _op_join(self, request: Dict[str, Any],
                 deadline: Optional[float]) -> Dict[str, Any]:
        left = _string_field(request, "left")
        right = _string_field(request, "right")
        refine = _bool_field(request, "refine", False)
        spec = self._join_spec(request, deadline)
        snap_l = self.db.relation(left).snapshot()
        snap_r = self.db.relation(right).snapshot()

        def compute() -> Dict[str, Any]:
            base = self.db.join_base(snap_l, snap_r, spec,
                                     refine=refine)
            return {"pairs": sorted(base.pairs),
                    "stats": base.stats.to_dict(),
                    "plan": base.plan.to_dict()}

        if self._mvcc:
            cached = self._base_cached("join", request,
                                       (snap_l, snap_r), compute)
        else:
            cached = compute()
        base = JoinResult([tuple(pair) for pair in cached["pairs"]],
                          JoinStatistics.from_dict(cached["stats"]))
        result = self.db.join_overlay(snap_l, snap_r, base, spec,
                                      refine=refine)
        pairs = sorted(result.pairs)
        return {"pairs": pairs, "count": len(pairs),
                "plan": cached["plan"],
                "stats": {
                    "algorithm": result.stats.algorithm,
                    "disk_accesses": result.stats.disk_accesses,
                    "comparisons": result.stats.comparisons.total,
                }}

    def _op_explain(self, request: Dict[str, Any],
                    deadline: Optional[float]) -> Dict[str, Any]:
        """Plan a join without executing it: the resolved
        :class:`~repro.plan.ExecutionPlan` as a JSON dict, candidates
        always scored.  The spec is built with no timeout so the
        cached payload does not depend on the request deadline."""
        left = _string_field(request, "left")
        right = _string_field(request, "right")
        spec = self._join_spec(request, None, default_algorithm="auto")
        plan = self.db.explain(left, right, spec=spec)
        return {"plan": plan.to_dict()}

    def _op_window(self, request: Dict[str, Any],
                   deadline: Optional[float]) -> Dict[str, Any]:
        relation = self.db.relation(_string_field(request, "relation"))
        window = request.get("window")
        if (not isinstance(window, list) or len(window) != 4
                or not all(isinstance(c, (int, float))
                           and not isinstance(c, bool) for c in window)):
            raise ProtocolError(
                "window must be [xl, yl, xu, yu] numbers")
        exact = _bool_field(request, "exact", False)
        try:
            rect = Rect(*(float(c) for c in window))
        except ValueError as exc:
            raise QueryError(str(exc)) from None
        snap = relation.snapshot()

        def compute() -> List[int]:
            refs = list(snap.tree.window_query(rect))
            if exact:
                refs = exact_window_survivors(refs, snap.base_objects,
                                              rect)
            return sorted(refs)

        if self._mvcc:
            base_refs = self._base_cached("window", request, (snap,),
                                          compute)
        else:
            base_refs = compute()
        delta = snap.delta
        if delta:
            hidden = delta.hidden
            refs = base_refs if not hidden \
                else [oid for oid in base_refs if oid not in hidden]
            added = delta.added_in(rect)
            if exact and added:
                added = exact_window_survivors(added, snap.objects,
                                               rect)
            # The filtered base refs are already sorted; only a
            # nonempty delta contribution forces a re-sort.
            if added:
                refs = sorted(refs + added)
        else:
            refs = base_refs
        return {"refs": refs, "count": len(refs)}

    def _op_knn(self, request: Dict[str, Any],
                deadline: Optional[float]) -> Dict[str, Any]:
        relation = self.db.relation(_string_field(request, "relation"))
        x = _number_field(request, "x")
        y = _number_field(request, "y")
        k = request.get("k", 1)
        if not isinstance(k, int) or isinstance(k, bool) or k < 1:
            raise ProtocolError(f"k must be a positive integer ({k!r})")
        neighbors = relation.nearest(x, y, k=k)
        return {"neighbors": [[ref, distance]
                              for ref, distance in neighbors]}

    def _op_get(self, request: Dict[str, Any],
                deadline: Optional[float]) -> Dict[str, Any]:
        relation = self.db.relation(_string_field(request, "relation"))
        oid = request.get("oid")
        if not isinstance(oid, int) or isinstance(oid, bool):
            raise ProtocolError(f"oid must be an integer ({oid!r})")
        return {"oid": oid,
                "geometry": geometry_to_json(relation.get(oid))}

    def _op_insert(self, request: Dict[str, Any],
                   deadline: Optional[float]) -> Dict[str, Any]:
        relation = self.db.relation(_string_field(request, "relation"))
        geometry = geometry_from_json(request.get("geometry"))
        oid = request.get("oid")
        if oid is not None and (not isinstance(oid, int)
                                or isinstance(oid, bool)):
            raise ProtocolError(f"oid must be an integer ({oid!r})")
        assigned = relation.insert(geometry, oid=oid)
        return {"oid": assigned, "epoch": relation.epoch}

    def _op_delete(self, request: Dict[str, Any],
                   deadline: Optional[float]) -> Dict[str, Any]:
        relation = self.db.relation(_string_field(request, "relation"))
        oid = request.get("oid")
        if not isinstance(oid, int) or isinstance(oid, bool):
            raise ProtocolError(f"oid must be an integer ({oid!r})")
        relation.delete(oid)
        return {"oid": oid, "epoch": relation.epoch}

    def _op_create(self, request: Dict[str, Any],
                   deadline: Optional[float]) -> Dict[str, Any]:
        name = _string_field(request, "relation")
        self.db.create_relation(name)
        return {"relation": name, "catalog_epoch": self.db.epoch}

    def _op_drop(self, request: Dict[str, Any],
                 deadline: Optional[float]) -> Dict[str, Any]:
        name = _string_field(request, "relation")
        self.db.drop_relation(name)
        return {"relation": name, "catalog_epoch": self.db.epoch}

    # ------------------------------------------------------------------
    # Background rebuild (delta merge)
    # ------------------------------------------------------------------

    def _rebuild_loop(self) -> None:
        """Rebuilder thread body: poll pending delta sizes, merge when
        the threshold or the interval says so."""
        poll = 0.05
        if self.rebuild_every is not None:
            poll = min(poll, self.rebuild_every / 4)
        last = time.monotonic()
        while not self._rebuild_stop.wait(poll):
            due = (self.rebuild_every is not None
                   and time.monotonic() - last >= self.rebuild_every)
            for relation in list(self.db.relations.values()):
                pending = relation.delta_ops_pending
                if not pending:
                    continue
                if due or (self.rebuild_threshold is not None
                           and pending >= self.rebuild_threshold):
                    try:
                        self._rebuild_relation(relation)
                    except Exception as exc:  # noqa: BLE001 — keep going
                        if self.obs.enabled:
                            self.obs.metrics.inc("serve.rebuild_errors")
                        self.slow_log(f"background rebuild of "
                                      f"{relation.name!r} failed: {exc}")
            if due:
                last = time.monotonic()

    def _rebuild_relation(self, relation) -> bool:
        """One full rebuild cycle for *relation*.

        The expensive part — bulk-loading the merged tree — runs with
        no lock held; only the freeze and the swap take the write
        lock, and the swap is followed by a checkpoint so the WAL
        records absorbed by the merge can be dropped.
        """
        started = time.perf_counter()
        with self._locked(write=True):
            begun = relation.begin_rebuild()
        if not begun:
            return False
        tree, objects = relation.build_merged()
        with self._locked(write=True):
            relation.commit_rebuild(tree, objects)
            if self.durability is not None:
                self.durability.checkpoint()
        self.rebuilds += 1
        if self.obs.enabled:
            self.obs.metrics.inc("serve.rebuilds")
            self.obs.metrics.observe(
                "serve.rebuild_ms",
                (time.perf_counter() - started) * 1e3)
        return True

    def force_rebuild(self) -> int:
        """Synchronously merge every relation's pending delta; returns
        how many relations were rebuilt (tests, admin tooling)."""
        return sum(1 for relation in list(self.db.relations.values())
                   if self._rebuild_relation(relation))

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------

    def metrics_snapshot(self) -> Dict[str, Any]:
        """Counters and gauges of the server registry (stats op)."""
        if self.obs.enabled:
            # Cache-usage gauges are derived on demand rather than
            # updated on every admission — the read path stays off
            # the metrics lock.
            self.obs.metrics.set_gauge("serve.cache.entries",
                                       self.cache.entries)
            self.obs.metrics.set_gauge("serve.cache.bytes",
                                       self.cache.bytes)
            self.obs.metrics.set_gauge("serve.cache.evictions",
                                       self.cache.evictions)
        snapshot = {"counters": dict(self.obs.metrics.counters),
                    "gauges": dict(self.obs.metrics.gauges),
                    "cache": cache_section(self.cache),
                    "ingest": {
                        "mode": self.ingest,
                        "pending_delta_ops": sum(
                            r.delta_ops_pending
                            for r in self.db.relations.values()),
                        "rebuilds": self.rebuilds,
                    }}
        latency = latency_section(self.obs, "serve.time_ms")
        if latency is not None:
            snapshot["latency_ms"] = latency
        lock_waits = {}
        for mode in ("read", "write"):
            section = latency_section(self.obs,
                                      f"serve.lock.{mode}_wait_ms")
            if section is not None:
                lock_waits[mode] = section
        if lock_waits:
            snapshot["lock_wait_ms"] = lock_waits
        if self.durability is not None:
            snapshot["durability"] = self.durability.status()
        return snapshot

    def close(self) -> None:
        """Stop the rebuilder, drain workers, then (when durable)
        checkpoint and release the WAL — the graceful-shutdown path of
        ``repro serve``."""
        self._rebuild_stop.set()
        if self._rebuilder is not None:
            self._rebuilder.join(timeout=10.0)
            self._rebuilder = None
        self.scheduler.shutdown()
        if self.durability is not None:
            with self._locked(write=True):
                self.durability.close(checkpoint=True)


#: Backwards-compatible private alias (pre-shard name).
_RWLock = ReadWriteLock


def cache_section(cache: ResultCache) -> Dict[str, Any]:
    """The ``cache`` block of a ``stats`` payload: capacity usage plus
    the hit/miss/eviction counters (and the derived hit rate), so
    cache effectiveness is observable wherever a :class:`ResultCache`
    fronts results — the single-process service and the shard
    router alike."""
    lookups = cache.hits + cache.misses
    return {"entries": cache.entries,
            "bytes": cache.bytes,
            "hits": cache.hits,
            "misses": cache.misses,
            "evictions": cache.evictions,
            "hit_rate": round(cache.hits / lookups, 4)
            if lookups else 0.0}


def latency_section(obs: Observability,
                    histogram_name: str) -> Optional[Dict[str, Any]]:
    """The ``latency_ms`` block of a ``stats`` payload, from one
    request-time histogram (None when nothing was observed yet)."""
    histogram = obs.metrics.histograms.get(histogram_name)
    if histogram is None or not histogram.count:
        return None
    percentiles = histogram.percentiles()
    return {
        "count": histogram.count,
        "mean": round(histogram.mean, 3),
        "p50": round(percentiles["p50"], 3),
        "p95": round(percentiles["p95"], 3),
        "p99": round(percentiles["p99"], 3),
        "max": round(histogram.vmax, 3)
        if histogram.vmax is not None else None,
    }


def _default_slow_log(line: str) -> None:
    import sys
    print(line, file=sys.stderr, flush=True)


def _remaining(deadline: Optional[float]) -> Optional[float]:
    if deadline is None:
        return None
    return max(1e-3, deadline - time.perf_counter())


def _string_field(request: Dict[str, Any], name: str) -> str:
    value = request.get(name)
    if not isinstance(value, str) or not value:
        raise ProtocolError(f"{name!r} must be a non-empty string "
                            f"({value!r})")
    return value


def _number_field(request: Dict[str, Any], name: str) -> float:
    value = request.get(name)
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ProtocolError(f"{name!r} must be a number ({value!r})")
    return float(value)


def _bool_field(request: Dict[str, Any], name: str,
                default: bool) -> bool:
    value = request.get(name, default)
    if not isinstance(value, bool):
        raise ProtocolError(f"{name!r} must be a boolean ({value!r})")
    return value
