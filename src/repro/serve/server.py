"""The TCP front end and the two clients.

:class:`SpatialQueryServer` wraps a :class:`~repro.serve.service.
QueryService` in a threading TCP server speaking the line-oriented
JSON protocol of :mod:`repro.serve.protocol`: one connection thread
per client, one request line in, one response line out, pipelining
allowed (responses come back in request order per connection).

Two clients cover the two deployment shapes:

* :class:`ServiceClient` — in-process, no socket: calls the service
  directly.  The default for tests, benchmarks, and embedding the
  service inside another Python process.
* :class:`TCPServiceClient` — a real socket client; what ``repro
  query --connect`` uses.
"""

from __future__ import annotations

import socket
import socketserver
import threading
from typing import Any, Dict, Optional, Tuple

from .protocol import (ProtocolError, decode_request, encode_request,
                       encode_response, error_response)
from .service import QueryService


class _ConnectionHandler(socketserver.StreamRequestHandler):
    """One client connection: a loop of request/response lines."""

    def handle(self) -> None:
        service: QueryService = self.server.service  # type: ignore
        while True:
            try:
                line = self.rfile.readline()
            except (ConnectionResetError, OSError):
                return          # client vanished mid-line
            if not line:
                return
            if not line.strip():
                continue
            try:
                request = decode_request(line)
            except ProtocolError as exc:
                response = error_response(None, exc.code, str(exc))
            else:
                response = service.handle(request)
            try:
                self.wfile.write(encode_response(response))
                self.wfile.flush()
            except (BrokenPipeError, ConnectionResetError):
                return


class _ThreadingTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class SpatialQueryServer:
    """A listening TCP server over one :class:`QueryService`."""

    def __init__(self, service: QueryService, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.service = service
        self._tcp = _ThreadingTCPServer((host, port), _ConnectionHandler)
        self._tcp.service = service  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) — with ``port=0`` the kernel picks."""
        return self._tcp.server_address[:2]

    def start(self) -> Tuple[str, int]:
        """Serve in a background thread; returns the bound address."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._tcp.serve_forever,
            name="serve-acceptor", daemon=True)
        self._thread.start()
        return self.address

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI's mode)."""
        self._tcp.serve_forever()

    def shutdown(self) -> None:
        """Stop accepting, drain workers, release the socket."""
        self._tcp.shutdown()
        self._tcp.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self.service.close()

    def __enter__(self) -> "SpatialQueryServer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()


class ServiceClient:
    """In-process client: the protocol without the socket."""

    def __init__(self, service: QueryService) -> None:
        self.service = service
        self._next_id = 0

    def request(self, op: str, **params: Any) -> Dict[str, Any]:
        """One round trip; returns the full response envelope."""
        self._next_id += 1
        return self.service.handle({"id": self._next_id, "op": op,
                                    **params})

    # Convenience wrappers returning the result payload (raising the
    # mapped error text on failure keeps test call sites short).

    def call(self, op: str, **params: Any) -> Any:
        response = self.request(op, **params)
        if not response["ok"]:
            error = response["error"]
            raise RuntimeError(f"{error['code']}: {error['message']}")
        return response["result"]

    def join(self, left: str, right: str, **params: Any) -> Any:
        return self.call("join", left=left, right=right, **params)

    def window(self, relation: str, window, **params: Any) -> Any:
        return self.call("window", relation=relation,
                         window=list(window), **params)

    def knn(self, relation: str, x: float, y: float,
            k: int = 1) -> Any:
        return self.call("knn", relation=relation, x=x, y=y, k=k)

    def insert(self, relation: str, geometry: Dict[str, Any],
               oid: Optional[int] = None) -> Any:
        params: Dict[str, Any] = {"relation": relation,
                                  "geometry": geometry}
        if oid is not None:
            params["oid"] = oid
        return self.call("insert", **params)

    def delete(self, relation: str, oid: int) -> Any:
        return self.call("delete", relation=relation, oid=oid)


class TCPServiceClient:
    """Blocking socket client for the line protocol.

    Supports pipelining: :meth:`send` queues a request without reading
    the response; :meth:`recv` reads the next response line.
    :meth:`request` is the simple send-then-recv round trip.
    """

    def __init__(self, host: str, port: int,
                 timeout: Optional[float] = 30.0) -> None:
        self._sock = socket.create_connection((host, port),
                                              timeout=timeout)
        self._rfile = self._sock.makefile("rb")
        self._next_id = 0

    def send(self, op: str, **params: Any) -> int:
        """Fire one request; returns the request id."""
        self._next_id += 1
        line = encode_request({"id": self._next_id, "op": op, **params})
        self._sock.sendall(line)
        return self._next_id

    def recv(self) -> Dict[str, Any]:
        """Read the next response line."""
        line = self._rfile.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return decode_response(line)

    def request(self, op: str, **params: Any) -> Dict[str, Any]:
        self.send(op, **params)
        return self.recv()

    def call(self, op: str, **params: Any) -> Any:
        response = self.request(op, **params)
        if not response.get("ok"):
            error = response.get("error", {})
            raise RuntimeError(f"{error.get('code', 'internal')}: "
                               f"{error.get('message', '')}")
        return response["result"]

    def close(self) -> None:
        try:
            self._rfile.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "TCPServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def decode_response(line: bytes) -> Dict[str, Any]:
    """Parse one response line (shared by the TCP client and the CLI)."""
    import json
    response = json.loads(line.decode("utf-8"))
    if not isinstance(response, dict):
        raise ProtocolError("response must be a JSON object")
    return response
