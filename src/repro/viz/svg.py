"""SVG rendering of datasets, trees and join results.

Debugging and documentation aid: draw a map's exact geometry, the MBR
layers of an R-tree (one colour per level), or the overlap picture of a
join.  Pure-stdlib string assembly — files open in any browser.
"""

from __future__ import annotations

import html
from typing import Iterable, List, Optional, Sequence, Tuple

from ..data.tiger import SpatialDataset
from ..geometry.polygon import Polygon
from ..geometry.polyline import Polyline
from ..geometry.rect import Rect
from ..rtree.base import RTreeBase

#: Level colours, leaf pages first (directory levels get warmer).
LEVEL_COLORS = ("#4477aa", "#ee6677", "#228833", "#ccbb44", "#66ccee",
                "#aa3377")

RectRecord = Tuple[Rect, int]


class SvgCanvas:
    """Accumulates SVG shapes in world coordinates (y-axis flipped)."""

    def __init__(self, world: Rect, width: int = 800,
                 height: Optional[int] = None) -> None:
        if world.width <= 0.0 or world.height <= 0.0:
            world = Rect(world.xl - 0.5, world.yl - 0.5,
                         world.xu + 0.5, world.yu + 0.5)
        self.world = world
        self.width = width
        self.height = height if height is not None else max(
            1, int(round(width * world.height / world.width)))
        self._sx = self.width / world.width
        self._sy = self.height / world.height
        self._shapes: List[str] = []

    # ------------------------------------------------------------------
    # Coordinate mapping
    # ------------------------------------------------------------------

    def _x(self, x: float) -> float:
        return (x - self.world.xl) * self._sx

    def _y(self, y: float) -> float:
        # SVG's y grows downward; maps grow upward.
        return self.height - (y - self.world.yl) * self._sy

    # ------------------------------------------------------------------
    # Shapes
    # ------------------------------------------------------------------

    def rect(self, rect: Rect, stroke: str = "#333333",
             fill: str = "none", opacity: float = 1.0,
             stroke_width: float = 1.0, title: str = "") -> None:
        x = self._x(rect.xl)
        y = self._y(rect.yu)
        w = max(rect.width * self._sx, 0.5)
        h = max(rect.height * self._sy, 0.5)
        tooltip = (f"<title>{html.escape(title)}</title>"
                   if title else "")
        self._shapes.append(
            f'<rect x="{x:.2f}" y="{y:.2f}" width="{w:.2f}" '
            f'height="{h:.2f}" stroke="{stroke}" fill="{fill}" '
            f'opacity="{opacity:g}" stroke-width="{stroke_width:g}">'
            f'{tooltip}</rect>')

    def polyline(self, line: Polyline, stroke: str = "#225588",
                 stroke_width: float = 1.0) -> None:
        points = " ".join(f"{self._x(x):.2f},{self._y(y):.2f}"
                          for x, y in line.vertices)
        self._shapes.append(
            f'<polyline points="{points}" fill="none" '
            f'stroke="{stroke}" stroke-width="{stroke_width:g}"/>')

    def polygon(self, polygon: Polygon, stroke: str = "#557722",
                fill: str = "#55772233") -> None:
        points = " ".join(f"{self._x(x):.2f},{self._y(y):.2f}"
                          for x, y in polygon.vertices)
        self._shapes.append(
            f'<polygon points="{points}" stroke="{stroke}" '
            f'fill="{fill}"/>')

    def circle(self, x: float, y: float, radius: float = 3.0,
               fill: str = "#cc3311") -> None:
        self._shapes.append(
            f'<circle cx="{self._x(x):.2f}" cy="{self._y(y):.2f}" '
            f'r="{radius:g}" fill="{fill}"/>')

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------

    def render(self) -> str:
        body = "\n".join(self._shapes)
        return (f'<svg xmlns="http://www.w3.org/2000/svg" '
                f'width="{self.width}" height="{self.height}" '
                f'viewBox="0 0 {self.width} {self.height}">\n'
                f'<rect width="100%" height="100%" fill="#ffffff"/>\n'
                f"{body}\n</svg>\n")

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.render())

    def __len__(self) -> int:
        return len(self._shapes)


def render_records(records: Sequence[RectRecord], path: str,
                   width: int = 800) -> SvgCanvas:
    """Draw MBR records as outlined rectangles."""
    if not records:
        raise ValueError("nothing to draw")
    world = Rect.mbr_of(rect for rect, _ in records)
    canvas = SvgCanvas(world, width=width)
    for rect, ref in records:
        canvas.rect(rect, stroke="#4477aa", opacity=0.6,
                    title=f"#{ref}")
    canvas.save(path)
    return canvas


def render_dataset(dataset: SpatialDataset, path: str,
                   width: int = 800) -> SvgCanvas:
    """Draw a dataset's exact geometry (lines blue, regions green)."""
    if not dataset.objects:
        raise ValueError("nothing to draw")
    canvas = SvgCanvas(dataset.world, width=width)
    for obj in dataset.objects.values():
        if isinstance(obj, Polygon):
            canvas.polygon(obj)
        else:
            canvas.polyline(obj)
    canvas.save(path)
    return canvas


def render_tree(tree: RTreeBase, path: str, width: int = 800,
                max_level: Optional[int] = None) -> SvgCanvas:
    """Draw an R-tree's node MBRs, one colour per level.

    ``max_level`` limits the picture to levels <= the given value
    (level 0 = data pages); by default all levels and the data
    rectangles themselves are drawn.
    """
    world = tree.mbr()
    if world is None:
        raise ValueError("cannot draw an empty tree")
    canvas = SvgCanvas(world, width=width)
    for node in tree.iter_nodes():
        if max_level is not None and node.level > max_level:
            continue
        color = LEVEL_COLORS[min(node.level, len(LEVEL_COLORS) - 1)]
        for entry in node.entries:
            emphasis = 0.35 if node.level == 0 else 0.9
            canvas.rect(entry.rect, stroke=color, opacity=emphasis,
                        stroke_width=0.8 + 0.6 * node.level)
    canvas.save(path)
    return canvas


def render_join(records_r: Sequence[RectRecord],
                records_s: Sequence[RectRecord],
                pairs: Iterable[Tuple[int, int]], path: str,
                width: int = 800) -> SvgCanvas:
    """Draw both relations and highlight the intersection rectangles of
    the result pairs."""
    if not records_r or not records_s:
        raise ValueError("nothing to draw")
    world = Rect.mbr_of(rect for rect, _ in records_r).union(
        Rect.mbr_of(rect for rect, _ in records_s))
    canvas = SvgCanvas(world, width=width)
    rects_r = dict((ref, rect) for rect, ref in records_r)
    rects_s = dict((ref, rect) for rect, ref in records_s)
    for rect in rects_r.values():
        canvas.rect(rect, stroke="#4477aa", opacity=0.35)
    for rect in rects_s.values():
        canvas.rect(rect, stroke="#228833", opacity=0.35)
    for ref_r, ref_s in pairs:
        common = rects_r[ref_r].intersection(rects_s[ref_s])
        if common is not None:
            canvas.rect(common, stroke="#ee6677", fill="#ee667755",
                        opacity=0.9, title=f"({ref_r}, {ref_s})")
    canvas.save(path)
    return canvas
