"""SVG visualization of datasets, trees and joins (extension)."""

from .svg import (LEVEL_COLORS, SvgCanvas, render_dataset, render_join,
                  render_records, render_tree)

__all__ = [
    "LEVEL_COLORS",
    "SvgCanvas",
    "render_dataset",
    "render_join",
    "render_records",
    "render_tree",
]
