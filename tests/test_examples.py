"""Smoke tests: every shipped example runs to completion.

Examples are the documentation users execute first, so they are part of
the test surface.  Each runs in a subprocess with a generous timeout.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[1] / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_expected_examples_present():
    assert {"quickstart.py", "forests_in_cities.py", "join_tuning.py",
            "persistence_and_recovery.py", "map_overlay_multiway.py",
            "spatial_database.py"} <= set(EXAMPLES)


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name):
    script = EXAMPLES_DIR / name
    args = [sys.executable, str(script)]
    if name == "join_tuning.py":
        args.append("0.01")     # smaller scale for the smoke run
    completed = subprocess.run(
        args, capture_output=True, text=True, timeout=300)
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "examples must narrate their work"
