"""Tests for the repro exception hierarchy."""

import pytest

from repro.errors import (CatalogError, OverloadedError, QueryError,
                          QueryTimeout, ReproError)


class TestHierarchy:
    def test_everything_is_a_repro_error(self):
        for cls in (CatalogError, QueryError, QueryTimeout,
                    OverloadedError):
            assert issubclass(cls, ReproError)

    def test_builtin_compatibility(self):
        # Pre-hierarchy call sites caught KeyError/ValueError; the new
        # classes must keep satisfying those handlers.
        assert issubclass(CatalogError, KeyError)
        assert issubclass(QueryError, ValueError)
        assert issubclass(QueryTimeout, ValueError)
        with pytest.raises(KeyError):
            raise CatalogError("unknown relation")
        with pytest.raises(ValueError):
            raise QueryTimeout("too slow")

    def test_overloaded_is_not_a_value_or_key_error(self):
        # Shedding is a server-state condition, not a bad query: it
        # must not be swallowed by legacy except clauses.
        assert not issubclass(OverloadedError, (KeyError, ValueError))


class TestCodes:
    def test_codes_are_stable(self):
        assert ReproError.code == "internal"
        assert CatalogError.code == "catalog"
        assert QueryError.code == "query"
        assert QueryTimeout.code == "timeout"
        assert OverloadedError.code == "overloaded"

    def test_codes_are_distinct(self):
        codes = [cls.code for cls in (ReproError, CatalogError,
                                      QueryError, QueryTimeout,
                                      OverloadedError)]
        assert len(set(codes)) == len(codes)


class TestMessages:
    def test_catalog_error_message_is_not_requoted(self):
        # KeyError.__str__ would render "'no such relation'".
        assert str(CatalogError("no such relation")) == \
            "no such relation"
        assert str(CatalogError()) == ""

    def test_catch_as_base_preserves_code(self):
        try:
            raise QueryTimeout("deadline passed")
        except ReproError as exc:
            assert exc.code == "timeout"
