"""Tests for the disk-array I/O model (extension)."""

import pytest

from repro.costmodel.parallel import (estimate_parallel_io, hashed,
                                      round_robin, scaling_profile)


def stripe_trace(n, disks):
    """A perfectly striped trace: page ids cycle through the disks."""
    return [(0, i) for i in range(n)]


def single_disk_run(n):
    """Every access hits the same page-id class (one disk under RR)."""
    return [(0, i * 4) for i in range(n)]


class TestDeclusterers:
    def test_round_robin_assignment(self):
        assign = round_robin(4)
        assert [assign((0, i)) for i in range(4)] == [0, 1, 2, 3]
        assert assign((1, 0)) == 1   # side offsets the stripe

    def test_hashed_in_range(self):
        assign = hashed(7)
        for key in [(0, i) for i in range(100)] + [(1, i) for i in range(50)]:
            assert 0 <= assign(key) < 7

    def test_validation(self):
        with pytest.raises(ValueError):
            round_robin(0)
        with pytest.raises(ValueError):
            hashed(0)
        with pytest.raises(ValueError):
            estimate_parallel_io([], 0, 4096)


class TestEstimates:
    def test_single_disk_equals_sequential(self):
        trace = stripe_trace(100, 1)
        estimate = estimate_parallel_io(trace, 1, 4096)
        assert estimate.serialized_accesses == 100
        assert estimate.busiest_disk_accesses == 100
        assert estimate.speedup_balanced == pytest.approx(1.0)
        assert estimate.speedup_scheduled == pytest.approx(1.0)

    def test_perfect_stripe_scales_linearly(self):
        trace = stripe_trace(400, 4)
        estimate = estimate_parallel_io(trace, 4, 4096)
        assert estimate.busiest_disk_accesses == 100
        assert estimate.speedup_balanced == pytest.approx(4.0)
        # The scheduled estimate reaches (nearly) the same.
        assert estimate.speedup_scheduled > 3.5

    def test_same_disk_run_does_not_speed_up(self):
        trace = single_disk_run(100)
        estimate = estimate_parallel_io(trace, 4, 4096)
        assert estimate.busiest_disk_accesses == 100
        assert estimate.speedup_balanced == pytest.approx(1.0)
        assert estimate.speedup_scheduled == pytest.approx(1.0)

    def test_scheduled_never_faster_than_balanced(self):
        import random
        rng = random.Random(1)
        trace = [(rng.randrange(2), rng.randrange(500))
                 for _ in range(300)]
        for disks in (2, 4, 8):
            estimate = estimate_parallel_io(trace, disks, 4096)
            assert estimate.serialized_accesses >= \
                estimate.busiest_disk_accesses

    def test_empty_trace(self):
        estimate = estimate_parallel_io([], 4, 4096)
        assert estimate.total_accesses == 0
        assert estimate.seconds_single_disk == 0.0
        assert estimate.speedup_balanced == 1.0

    def test_declusterer_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            estimate_parallel_io([(0, 1)], 2, 4096,
                                 decluster=lambda key: 5)


class TestScalingProfile:
    def test_profile_monotone_for_random_trace(self):
        import random
        rng = random.Random(2)
        trace = [(0, rng.randrange(1000)) for _ in range(500)]
        profile = scaling_profile(trace, 4096, disk_counts=(1, 2, 4, 8))
        times = [e.seconds_scheduled for e in profile]
        assert times == sorted(times, reverse=True)
        assert profile[0].disks == 1


class TestJoinTraceIntegration:
    def test_sj4_trace_scales(self):
        from repro.core import JoinContext, make_algorithm
        from tests.conftest import build_rstar, make_rects

        tree_r = build_rstar(make_rects(2000, seed=501), page_size=256)
        tree_s = build_rstar(make_rects(2000, seed=502), page_size=256)
        ctx = JoinContext(tree_r, tree_s, buffer_kb=8, record_trace=True)
        make_algorithm("sj4").run(ctx)
        trace = ctx.manager.trace
        assert len(trace) == ctx.stats.io.disk_reads
        estimate = estimate_parallel_io(trace, 4, 256)
        # A join schedule on 4 disks should save a good share of I/O time.
        assert estimate.speedup_scheduled > 1.5

    def test_trace_disabled_by_default(self):
        from repro.core import JoinContext, make_algorithm
        from tests.conftest import build_rstar, make_rects

        tree_r = build_rstar(make_rects(300, seed=503))
        tree_s = build_rstar(make_rects(300, seed=504))
        ctx = JoinContext(tree_r, tree_s, buffer_kb=8)
        make_algorithm("sj4").run(ctx)
        assert ctx.manager.trace == []
