"""Unit tests for the paper's cost model."""

import pytest

from repro.core import JoinStatistics
from repro.costmodel import (CostModel, PAPER_COST_MODEL, T_COMPARE,
                             T_POSITION, T_TRANSFER_PER_KB)


def test_paper_constants():
    assert T_POSITION == 1.5e-2
    assert T_TRANSFER_PER_KB == 5e-3
    assert T_COMPARE == 3.9e-6


def test_io_seconds_scales_with_page_size():
    # One access of a 1 KByte page: 0.015 + 0.005 = 0.02 s.
    assert PAPER_COST_MODEL.io_seconds(1, 1024) == pytest.approx(0.02)
    # 8 KByte: 0.015 + 8 * 0.005 = 0.055 s.
    assert PAPER_COST_MODEL.io_seconds(1, 8192) == pytest.approx(0.055)


def test_cpu_seconds():
    assert PAPER_COST_MODEL.cpu_seconds(1_000_000) == pytest.approx(3.9)


def test_paper_figure2_magnitude():
    """Check the model against the paper's own numbers: SJ1 at 1 KByte
    with no buffer: 24,727 accesses and 33,566,961 comparisons should
    land near the ~625 s the upper diagram of Figure 2 shows."""
    io = PAPER_COST_MODEL.io_seconds(24_727, 1024)
    cpu = PAPER_COST_MODEL.cpu_seconds(33_566_961)
    assert io == pytest.approx(494.5, rel=0.01)
    assert cpu == pytest.approx(130.9, rel=0.01)
    total = io + cpu
    assert 550 < total < 700
    # And the join is slightly I/O-bound at 1 KByte, as the paper says.
    assert io > cpu


def test_estimate_from_stats():
    stats = JoinStatistics(page_size=2048)
    stats.io.disk_reads = 100
    stats.comparisons.join = 10_000
    stats.comparisons.sort = 1_000
    stats.presort_comparisons = 5_000
    estimate = PAPER_COST_MODEL.estimate(stats)
    assert estimate.io_seconds == pytest.approx(100 * (0.015 + 2 * 0.005))
    assert estimate.cpu_seconds == pytest.approx(11_000 * 3.9e-6)
    with_presort = PAPER_COST_MODEL.estimate(stats, include_presort=True)
    assert with_presort.cpu_seconds == pytest.approx(16_000 * 3.9e-6)


def test_io_bound_flag():
    stats = JoinStatistics(page_size=1024)
    stats.io.disk_reads = 1000
    stats.comparisons.join = 10
    estimate = PAPER_COST_MODEL.estimate(stats)
    assert estimate.io_bound
    assert estimate.io_fraction > 0.99
    assert estimate.total_seconds == pytest.approx(
        estimate.cpu_seconds + estimate.io_seconds)


def test_zero_work():
    stats = JoinStatistics(page_size=1024)
    estimate = PAPER_COST_MODEL.estimate(stats)
    assert estimate.total_seconds == 0.0
    assert estimate.io_fraction == 0.0


def test_custom_constants():
    model = CostModel(t_position=0.0, t_transfer_per_kb=0.0,
                      t_compare=1.0)
    assert model.cpu_seconds(5) == 5.0
    assert model.io_seconds(100, 8192) == 0.0


def test_negative_constants_rejected():
    with pytest.raises(ValueError):
        CostModel(t_position=-1.0)
