"""Tests for the analytical join-cost estimator."""

import pytest

from repro.costmodel.estimate import (JoinCardinalityEstimator,
                                      LevelProfile, level_profiles)
from repro.data import uniform_rects
from repro.rtree import RStarTree, RTreeParams
from tests.conftest import build_rstar, make_rects
from repro.core import JoinSpec


class TestLevelProfiles:
    def test_counts_match_census(self):
        tree = build_rstar(make_rects(1000, seed=601), page_size=256)
        profiles = {p.level: p for p in level_profiles(tree)}
        assert profiles[0].count == 1000
        from repro.rtree import tree_properties
        props = tree_properties(tree)
        # Level-1 entries are the leaf MBRs: one per data page.
        assert profiles[1].count == props.data_pages

    def test_average_extents_positive(self):
        tree = build_rstar(make_rects(500, seed=602), page_size=256)
        for profile in level_profiles(tree):
            assert profile.avg_width > 0.0
            assert profile.avg_height > 0.0

    def test_single_leaf_tree(self):
        from repro.geometry import Rect
        tree = RStarTree(RTreeParams.from_page_size(1024))
        tree.insert(Rect(0, 0, 2, 4), 1)
        profiles = level_profiles(tree)
        assert len(profiles) == 1
        assert profiles[0] == LevelProfile(0, 1, 2.0, 4.0)

    @pytest.mark.parametrize("n,page_size,expected_height", [
        (5, 1024, 1),      # root is the single leaf
        (60, 1024, 2),     # root over leaf pages
        (120, 256, 3),     # a directory level in between
    ])
    def test_level_convention_matches_height(self, n, page_size,
                                             expected_height):
        # ``LevelProfile.level`` counts from the data entries (level 0)
        # while ``RTreeBase.height`` counts nodes from the root; the
        # planner's depth alignment depends on the deepest profile
        # sitting exactly at height - 1.
        tree = build_rstar(make_rects(n, seed=603), page_size=page_size)
        profiles = level_profiles(tree)
        assert tree.height == expected_height
        assert profiles[0].level == 0
        assert profiles[-1].level == tree.height - 1
        assert [p.level for p in profiles] == list(range(tree.height))


class TestPredictions:
    @pytest.fixture(scope="class")
    def uniform_setup(self):
        # Uniform data: exactly the estimator's model assumption.
        left = uniform_rects(4000, seed=603, max_width=600,
                             max_height=600)
        right = uniform_rects(4000, seed=604, max_width=600,
                              max_height=600)
        tree_r = build_rstar(left, page_size=1024)
        tree_s = build_rstar(right, page_size=1024)
        return left, right, tree_r, tree_s

    def test_output_estimate_accurate_on_uniform_data(self,
                                                      uniform_setup):
        from repro.core import plane_sweep_join
        left, right, tree_r, tree_s = uniform_setup
        prediction = JoinCardinalityEstimator(tree_r, tree_s).predict()
        actual = len(plane_sweep_join(left, right))
        assert actual > 0
        # Uniform data: within a factor of 2.
        assert actual / 2 <= prediction.output_pairs <= actual * 2

    def test_access_estimate_right_order(self, uniform_setup):
        from repro.core import spatial_join
        _, _, tree_r, tree_s = uniform_setup
        prediction = JoinCardinalityEstimator(tree_r, tree_s).predict()
        measured = spatial_join(tree_r, tree_s,
                                spec=JoinSpec(algorithm="sj1", buffer_kb=0)).stats.disk_accesses
        assert measured / 4 <= prediction.disk_accesses_no_buffer \
            <= measured * 4

    def test_node_pairs_positive_per_level(self, uniform_setup):
        _, _, tree_r, tree_s = uniform_setup
        prediction = JoinCardinalityEstimator(tree_r, tree_s).predict()
        assert prediction.node_pairs_per_level[0] > 0
        assert prediction.node_pairs_total >= prediction.output_pairs

    def test_different_heights_supported(self):
        big = build_rstar(make_rects(5000, seed=605), page_size=256)
        small = build_rstar(make_rects(200, seed=606), page_size=256)
        assert big.height > small.height
        prediction = JoinCardinalityEstimator(big, small).predict()
        assert prediction.output_pairs > 0

    def test_empty_tree_rejected(self):
        tree = RStarTree(RTreeParams.from_page_size(1024))
        full = build_rstar(make_rects(100, seed=607))
        with pytest.raises(ValueError):
            JoinCardinalityEstimator(tree, full)

    def test_probability_clamped(self):
        profile_big = LevelProfile(0, 10, 1e9, 1e9)
        small = build_rstar(make_rects(100, seed=608))
        estimator = JoinCardinalityEstimator(small, small)
        assert estimator.intersect_probability(profile_big,
                                               profile_big) == 1.0
