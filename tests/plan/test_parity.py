"""Planner parity: an auto join is byte-identical to running the
chosen algorithm directly, serially and in parallel."""

from dataclasses import replace

import pytest

from repro.core import execute_plan, parallel_spatial_join, spatial_join
from repro.core.spec import JoinSpec
from repro.plan import plan_join


@pytest.fixture(scope="module")
def auto_spec():
    return JoinSpec(algorithm="auto", buffer_kb=64.0)


class TestSerialParity:
    def test_auto_matches_chosen_fixed(self, medium_trees, auto_spec):
        tree_r, tree_s = medium_trees
        auto = spatial_join(tree_r, tree_s, spec=auto_spec)
        fixed = spatial_join(
            tree_r, tree_s,
            spec=replace(auto_spec, algorithm=auto.plan.algorithm,
                         presort=auto.plan.presort))
        assert auto.pairs == fixed.pairs
        assert auto.stats.disk_accesses == fixed.stats.disk_accesses
        assert (auto.stats.comparisons.total
                == fixed.stats.comparisons.total)

    def test_every_fixed_algorithm_unchanged_by_planning(
            self, medium_trees):
        # The plan-then-execute path must not perturb the classic
        # fixed-algorithm results (golden counters ride on this).
        tree_r, tree_s = medium_trees
        baseline = None
        for algorithm in ("sj1", "sj4"):
            result = spatial_join(tree_r, tree_s,
                                  spec=JoinSpec(algorithm=algorithm, buffer_kb=64.0))
            assert result.plan.algorithm == algorithm
            assert result.plan.requested == algorithm
            if baseline is None:
                baseline = result.pair_set()
            else:
                assert result.pair_set() == baseline

    def test_execute_plan_equals_spatial_join(self, medium_trees,
                                              auto_spec):
        tree_r, tree_s = medium_trees
        plan = plan_join(tree_r, tree_s, auto_spec)
        direct = execute_plan(tree_r, tree_s, plan)
        via_entry = spatial_join(tree_r, tree_s, spec=auto_spec)
        assert direct.pairs == via_entry.pairs


class TestParallelParity:
    def test_auto_with_workers_matches_fixed(self, medium_trees,
                                             auto_spec):
        tree_r, tree_s = medium_trees
        spec = replace(auto_spec, workers=2)
        auto = spatial_join(tree_r, tree_s, spec=spec)
        assert auto.workers == 2
        assert auto.plan.algorithm == auto.plan.requested or \
            auto.plan.requested == "auto"
        fixed = spatial_join(
            tree_r, tree_s,
            spec=replace(spec, algorithm=auto.plan.algorithm,
                         presort=auto.plan.presort))
        assert auto.pairs == fixed.pairs

    def test_parallel_entry_accepts_plan(self, medium_trees, auto_spec):
        tree_r, tree_s = medium_trees
        spec = replace(auto_spec, workers=2)
        plan = plan_join(tree_r, tree_s, spec)
        via_plan = parallel_spatial_join(tree_r, tree_s, plan=plan)
        via_spec = parallel_spatial_join(tree_r, tree_s, spec)
        assert via_plan.pairs == via_spec.pairs
        assert via_plan.plan == plan

    def test_plan_and_spec_are_exclusive(self, medium_trees, auto_spec):
        tree_r, tree_s = medium_trees
        plan = plan_join(tree_r, tree_s, auto_spec)
        with pytest.raises(TypeError, match="not both"):
            parallel_spatial_join(tree_r, tree_s, auto_spec, plan=plan)


class TestPlanOnResults:
    def test_result_carries_concrete_plan(self, medium_trees, auto_spec):
        tree_r, tree_s = medium_trees
        result = spatial_join(tree_r, tree_s, spec=auto_spec)
        assert result.plan.requested == "auto"
        assert result.plan.algorithm != "auto"
        assert result.stats.algorithm.lower().startswith(
            result.plan.algorithm[:3])

    def test_streaming_plans_too(self, medium_trees, auto_spec):
        from repro.core import spatial_join_stream
        tree_r, tree_s = medium_trees
        seen = []
        stats = spatial_join_stream(tree_r, tree_s,
                                    lambda a, b: seen.append((a, b)),
                                    spec=auto_spec)
        materialized = spatial_join(tree_r, tree_s, spec=auto_spec)
        assert seen == materialized.pairs
        assert stats.disk_accesses == materialized.stats.disk_accesses

    def test_streaming_rejects_workers(self, medium_trees):
        from repro.core import spatial_join_stream
        tree_r, tree_s = medium_trees
        with pytest.raises(ValueError, match="parallel"):
            spatial_join_stream(tree_r, tree_s, lambda a, b: None,
                                spec=JoinSpec(workers=2))
