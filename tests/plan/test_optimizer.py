"""The cost-based optimizer: scoring, choice, presort, calibration."""

import json

import pytest

from repro.core.spec import JoinSpec
from repro.obs import Observability, document_from
from repro.plan import (AUTO_CANDIDATES, Calibration, PAPER_CALIBRATION,
                        SCHEDULE_LOCALITY, plan_join, record_plan,
                        score_candidates)
from repro.rtree import RTreeParams, RStarTree

from ..conftest import build_rstar, make_rects


@pytest.fixture(scope="module")
def trees():
    return (build_rstar(make_rects(1200, seed=5)),
            build_rstar(make_rects(1200, seed=6)))


class TestScoreCandidates:
    def test_scores_all_candidates_cheapest_first(self, trees):
        ranked = score_candidates(*trees, JoinSpec(algorithm="auto"))
        assert {c.algorithm for c in ranked} == set(AUTO_CANDIDATES)
        totals = [c.est_total_s for c in ranked]
        assert totals == sorted(totals)

    def test_restriction_cuts_estimated_cpu(self, trees):
        by_name = {c.algorithm: c for c in score_candidates(
            *trees, JoinSpec(algorithm="auto"))}
        # Table 3: the search-space restriction saves CPU by an order
        # of magnitude; the model must at least preserve the direction.
        assert by_name["sj2"].est_cpu_s < by_name["sj1"].est_cpu_s

    def test_sweep_beats_quadratic_scan(self, trees):
        by_name = {c.algorithm: c for c in score_candidates(
            *trees, JoinSpec(algorithm="auto"))}
        assert by_name["sj3"].est_cpu_s <= by_name["sj2"].est_cpu_s

    def test_locality_orders_io(self, trees):
        # On a buffer too small to cover the trees, better schedule
        # locality (Table 5) must mean fewer estimated accesses.
        spec = JoinSpec(algorithm="auto", buffer_kb=2.0)
        by_name = {c.algorithm: c for c in score_candidates(*trees, spec)}
        assert (by_name["sj4"].est_disk_accesses
                <= by_name["sj3"].est_disk_accesses
                <= by_name["sj1"].est_disk_accesses)

    def test_empty_tree_raises(self, trees):
        empty = RStarTree(RTreeParams.from_page_size(1024))
        with pytest.raises(ValueError, match="empty"):
            score_candidates(trees[0], empty, JoinSpec(algorithm="auto"))


class TestPlanJoin:
    def test_auto_resolves_to_candidate(self, trees):
        plan = plan_join(*trees, JoinSpec(algorithm="auto"))
        assert plan.requested == "auto"
        assert plan.algorithm in AUTO_CANDIDATES
        assert plan.chosen_candidate is not None
        assert plan.reason.startswith("cost-based")

    def test_fixed_fast_path_skips_scoring(self, trees):
        plan = plan_join(*trees, JoinSpec(algorithm="sj2"))
        assert plan.algorithm == "sj2"
        assert plan.candidates == ()
        assert plan.reason == "algorithm fixed by spec"

    def test_fixed_with_score_keeps_choice(self, trees):
        plan = plan_join(*trees, JoinSpec(algorithm="sj1"), score=True)
        assert plan.algorithm == "sj1"
        assert plan.chosen_candidate.algorithm == "sj1"
        assert len(plan.candidates) == len(AUTO_CANDIDATES)

    def test_fixed_with_score_executes_identically(self, trees):
        # --explain must never change what runs: the scored plan and
        # the fast-path plan map to the same spec and cache key.
        spec = JoinSpec(algorithm="sj3", buffer_kb=64.0)
        fast = plan_join(*trees, spec)
        scored = plan_join(*trees, spec, score=True)
        assert scored.to_spec() == fast.to_spec()
        assert scored.cache_key == fast.cache_key

    def test_empty_input_falls_back_to_default(self, trees):
        empty = RStarTree(RTreeParams.from_page_size(1024))
        plan = plan_join(trees[0], empty, JoinSpec(algorithm="auto"))
        assert plan.algorithm == "sj4"
        assert "empty input" in plan.reason

    def test_spec_knobs_survive(self, trees):
        spec = JoinSpec(algorithm="auto", buffer_kb=48.0, workers=2,
                        sort_mode="on_read", timeout=7.5)
        plan = plan_join(*trees, spec)
        assert plan.buffer_kb == 48.0
        assert plan.workers == 2
        assert plan.sort_mode == "on_read"
        assert plan.timeout == 7.5

    def test_presort_decision_follows_repeat_factor(self, trees):
        # Force the repeat-factor rule both ways via the threshold.
        eager = plan_join(*trees, JoinSpec(algorithm="auto"),
                          calibration=Calibration(presort_threshold=0.0))
        assert eager.presort or eager.algorithm not in (
            "sj3", "sj4", "sj5")
        lazy = plan_join(*trees, JoinSpec(algorithm="auto"),
                         calibration=Calibration(
                             presort_threshold=float("inf")))
        assert not lazy.presort

    def test_presort_never_forced_for_fixed_spec(self, trees):
        plan = plan_join(*trees, JoinSpec(algorithm="sj4"), score=True)
        assert not plan.presort


class TestCalibration:
    def test_paper_default(self):
        assert PAPER_CALIBRATION.source == "paper"
        assert set(SCHEDULE_LOCALITY) >= {"sj1", "sj2", "sj3", "sj4",
                                          "sj5"}

    def test_from_bench_scales_uniformly(self, tmp_path):
        rows = [{"benchmark": "join", "wall_ms": 78.0,
                 "counters": {"comparisons": 10_000}}]
        path = tmp_path / "BENCH_join.json"
        path.write_text(json.dumps(rows))
        cal = Calibration.from_bench(str(path))
        assert cal.source == "bench:BENCH_join.json"
        assert cal.t_compare == pytest.approx(7.8e-6)
        # One machine factor for all three constants: the CPU:I/O
        # balance (and hence the ranking) is preserved.
        scale = cal.t_compare / PAPER_CALIBRATION.t_compare
        assert cal.t_position == pytest.approx(
            PAPER_CALIBRATION.t_position * scale)
        assert cal.t_transfer_per_kb == pytest.approx(
            PAPER_CALIBRATION.t_transfer_per_kb * scale)

    def test_from_bench_missing_file_falls_back(self, tmp_path):
        cal = Calibration.from_bench(str(tmp_path / "nope.json"))
        assert cal == Calibration()

    def test_from_bench_ignores_unusable_rows(self, tmp_path):
        path = tmp_path / "BENCH_join.json"
        path.write_text(json.dumps([{"wall_ms": 0.0}, "junk",
                                    {"counters": {}}]))
        assert Calibration.from_bench(str(path)) == Calibration()

    def test_from_bench_skips_incomparable_env_rows(self, tmp_path):
        """Rows measured under another backend/platform must not feed
        this machine's calibration (schema-2 env filter)."""
        from repro.bench.envinfo import environment_fingerprint
        here = environment_fingerprint()
        other = dict(here, backend=("stdlib"
                                    if here["backend"] == "numpy"
                                    else "numpy"))
        path = tmp_path / "BENCH_join.json"
        path.write_text(json.dumps([
            {"wall_ms": 78.0, "counters": {"comparisons": 10_000},
             "env": here},
            {"wall_ms": 99999.0, "counters": {"comparisons": 10},
             "env": other},
        ]))
        cal = Calibration.from_bench(str(path))
        assert cal.t_compare == pytest.approx(7.8e-6)
        # A file holding only foreign rows falls back to the paper.
        path.write_text(json.dumps([
            {"wall_ms": 99999.0, "counters": {"comparisons": 10},
             "env": other}]))
        assert Calibration.from_bench(str(path)) == Calibration()

    def test_ranking_stable_under_bench_calibration(self, tmp_path):
        trees = (build_rstar(make_rects(600, seed=7)),
                 build_rstar(make_rects(600, seed=8)))
        rows = [{"wall_ms": 50.0, "counters": {"comparisons": 1_000}}]
        path = tmp_path / "BENCH_join.json"
        path.write_text(json.dumps(rows))
        cal = Calibration.from_bench(str(path))
        spec = JoinSpec(algorithm="auto")
        paper = [c.algorithm for c in score_candidates(*trees, spec)]
        scaled = [c.algorithm
                  for c in score_candidates(*trees, spec,
                                            calibration=cal)]
        assert paper == scaled


class TestRecordPlan:
    def test_noop_when_disabled(self, trees):
        plan = plan_join(*trees, JoinSpec(algorithm="auto"))
        obs = Observability(enabled=False)
        record_plan(obs, plan)
        assert not obs.metrics.counters

    def test_counters_and_gauges(self, trees):
        plan = plan_join(*trees, JoinSpec(algorithm="auto"))
        obs = Observability()
        record_plan(obs, plan)
        counters = obs.metrics.counters
        assert counters["plan.joins"] == 1
        assert counters["plan.auto"] == 1
        assert counters[f"plan.chosen.{plan.algorithm}"] == 1
        gauges = obs.metrics.gauges
        assert gauges["plan.est_total_s"] == pytest.approx(
            plan.chosen_candidate.est_total_s)
        assert gauges["plan.repeat_factor"] == pytest.approx(
            plan.repeat_factor)

    def test_plan_lands_in_trace_document(self, trees):
        plan = plan_join(*trees, JoinSpec(algorithm="auto"))
        obs = Observability()
        record_plan(obs, plan)
        document = document_from(obs, meta={"plan": plan.to_dict()})
        assert document.counters["plan.joins"] == 1
        assert document.meta["plan"]["algorithm"] == plan.algorithm
