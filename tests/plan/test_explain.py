"""Explainability end-to-end: render, database, serve op, CLI, report."""

import json
import random

import pytest

from repro.core.spec import JoinSpec
from repro.db import SpatialDatabase
from repro.geometry import Rect
from repro.obs import read_trace, render_report
from repro.plan import ExecutionPlan, plan_join, render_plan
from repro.serve import QueryService, ServiceClient

from ..conftest import build_rstar, make_rects


def build_db(n=150, seed=11):
    db = SpatialDatabase(page_size=1024)
    rng = random.Random(seed)
    for name in ("streets", "rivers"):
        relation = db.create_relation(name)
        for _ in range(n):
            x, y = rng.uniform(0, 500), rng.uniform(0, 500)
            relation.insert(Rect(x, y, x + rng.uniform(1, 25),
                                 y + rng.uniform(1, 25)))
    return db


@pytest.fixture(scope="module")
def trees():
    return (build_rstar(make_rects(800, seed=21)),
            build_rstar(make_rects(800, seed=22)))


class TestRenderPlan:
    def test_auto_plan_renders_candidate_table(self, trees):
        plan = plan_join(*trees, JoinSpec(algorithm="auto"))
        text = render_plan(plan)
        assert text.startswith(f"plan: {plan.algorithm} "
                               "(requested auto)")
        assert "candidate" in text
        for name in ("sj1", "sj2", "sj3", "sj4", "sj5"):
            assert name in text
        assert "*" + plan.algorithm in text.replace(" ", "")
        assert "cache_key=" in text

    def test_fast_path_plan_renders_without_table(self, trees):
        plan = plan_join(*trees, JoinSpec(algorithm="sj2"))
        text = render_plan(plan)
        assert text.startswith("plan: sj2")
        assert "candidate" not in text

    def test_survives_dict_round_trip(self, trees):
        plan = plan_join(*trees, JoinSpec(algorithm="auto"))
        clone = ExecutionPlan.from_dict(plan.to_dict())
        assert render_plan(clone) == render_plan(plan)


class TestDatabaseExplain:
    def test_explain_scores_without_executing(self):
        db = build_db()
        plan = db.explain("streets", "rivers",
                          spec=JoinSpec(algorithm="auto",
                                        sort_mode="on_read"))
        assert plan.requested == "auto"
        assert plan.candidates

    def test_explain_matches_join(self):
        db = build_db()
        spec = JoinSpec(algorithm="auto", sort_mode="on_read")
        plan = db.explain("streets", "rivers", spec=spec)
        result = db.join("streets", "rivers", spec=spec)
        assert result.plan.algorithm == plan.algorithm
        assert result.plan.cache_key == plan.cache_key

    def test_fixed_algorithm_is_rescored_for_display(self):
        db = build_db()
        plan = db.explain("streets", "rivers", spec=JoinSpec(algorithm="sj1"))
        assert plan.algorithm == "sj1"
        assert plan.candidates
        assert plan.chosen_candidate.algorithm == "sj1"


class TestServeExplain:
    @pytest.fixture
    def service(self):
        svc = QueryService(build_db(), workers=2, default_timeout=30.0)
        yield svc
        svc.close()

    @pytest.fixture
    def client(self, service):
        return ServiceClient(service)

    def test_explain_op_returns_plan(self, client):
        payload = client.call("explain", left="streets", right="rivers")
        plan = ExecutionPlan.from_dict(payload["plan"])
        assert plan.requested == "auto"
        assert plan.candidates

    def test_explain_predicts_the_join(self, client):
        explained = client.call("explain", left="streets",
                                right="rivers")
        joined = client.call("join", left="streets", right="rivers",
                             algorithm="auto")
        assert (joined["plan"]["algorithm"]
                == explained["plan"]["algorithm"])
        assert joined["stats"]["algorithm"].lower().startswith(
            explained["plan"]["algorithm"][:3])

    def test_explain_is_cached(self, service):
        client = ServiceClient(service)
        first = client.request("explain", left="streets",
                               right="rivers")
        second = client.request("explain", left="streets",
                                right="rivers")
        assert first["ok"] and second["ok"]
        assert not first.get("cached")
        assert second.get("cached")
        assert first["result"] == second["result"]

    def test_join_accepts_auto(self, service, client):
        payload = client.call("join", left="streets", right="rivers",
                              algorithm="auto")
        direct = service.db.join(
            "streets", "rivers",
            spec=JoinSpec(algorithm="auto", buffer_kb=128.0,
                          sort_mode="on_read"))
        assert [tuple(p) for p in payload["pairs"]] == \
            sorted(direct.pairs)

    def test_bad_algorithm_lists_registry_choices(self, client):
        response = client.request("explain", left="streets",
                                  right="rivers", algorithm="sj9")
        assert response["error"]["code"] == "query"
        assert "auto" in response["error"]["message"]


class TestCLIExplain:
    @pytest.fixture
    def tree_files(self, tmp_path):
        from repro.rtree import save_tree
        left = build_rstar(make_rects(400, seed=31))
        right = build_rstar(make_rects(400, seed=32))
        paths = (str(tmp_path / "l.rtree"), str(tmp_path / "r.rtree"))
        save_tree(left, paths[0])
        save_tree(right, paths[1])
        return paths

    def test_join_auto_explain_prints_plan_and_runs(self, tree_files,
                                                    capsys):
        from repro.cli import main
        assert main(["join", *tree_files, "--algorithm", "auto",
                     "--explain"]) == 0
        out = capsys.readouterr().out
        assert "plan: sj" in out
        assert "(requested auto)" in out
        assert "candidate" in out
        assert "pairs" in out  # the join actually ran

    def test_json_mode_keeps_stdout_parseable(self, tree_files, capsys):
        from repro.cli import main
        assert main(["join", *tree_files, "--algorithm", "auto",
                     "--explain", "--json"]) == 0
        captured = capsys.readouterr()
        data = json.loads(captured.out)
        assert data["requested_algorithm"] == "auto"
        assert data["algorithm"].lower().startswith("sj")
        assert "plan:" in captured.err

    def test_trace_embeds_plan_and_report_renders_it(self, tree_files,
                                                     tmp_path, capsys):
        from repro.cli import main
        trace = str(tmp_path / "run.jsonl")
        assert main(["join", *tree_files, "--algorithm", "auto",
                     "--trace", trace]) == 0
        capsys.readouterr()
        document = read_trace(trace)
        plan = document.meta["plan"]
        assert plan["requested"] == "auto"
        assert document.counters["plan.joins"] == 1
        assert document.counters["plan.auto"] == 1
        assert document.counters[
            f"plan.chosen.{plan['algorithm']}"] == 1
        text = render_report(document)
        assert "plan:" in text
        assert plan["algorithm"] in text
