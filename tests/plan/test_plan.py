"""ExecutionPlan: immutability, serialization, spec round-trips."""

import json
import pickle
from dataclasses import replace

import pytest

from repro.core.spec import JoinSpec
from repro.geometry import SpatialPredicate
from repro.plan import ExecutionPlan, PlanCandidate


def scored_plan(**overrides):
    candidates = (
        PlanCandidate(algorithm="sj4", est_comparisons=100.0,
                      est_disk_accesses=10.0, est_cpu_s=0.01,
                      est_io_s=0.2, chosen=True),
        PlanCandidate(algorithm="sj1", est_comparisons=900.0,
                      est_disk_accesses=10.0, est_cpu_s=0.09,
                      est_io_s=0.2),
    )
    kwargs = dict(algorithm="sj4", requested="auto",
                  reason="cost-based: sj4",
                  repeat_factor=1.4, est_output_pairs=42.0,
                  candidates=candidates)
    kwargs.update(overrides)
    return ExecutionPlan(**kwargs)


class TestExecutionPlan:
    def test_rejects_auto(self):
        with pytest.raises(ValueError, match="concrete"):
            ExecutionPlan(algorithm="auto", requested="auto")

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(ValueError):
            ExecutionPlan(algorithm="sj9", requested="sj9")

    def test_normalizes_case_and_predicate(self):
        plan = ExecutionPlan(algorithm="SJ4", requested="AUTO",
                             predicate=SpatialPredicate.CONTAINS)
        assert plan.algorithm == "sj4"
        assert plan.requested == "auto"
        assert plan.predicate == "contains"

    def test_chosen_candidate(self):
        plan = scored_plan()
        assert plan.chosen_candidate.algorithm == "sj4"
        bare = ExecutionPlan(algorithm="sj4", requested="sj4")
        assert bare.chosen_candidate is None

    def test_picklable(self):
        plan = scored_plan()
        assert pickle.loads(pickle.dumps(plan)) == plan


class TestRoundTrip:
    def test_to_dict_is_json_ready(self):
        payload = json.dumps(scored_plan().to_dict())
        assert "sj4" in payload

    def test_dict_round_trip(self):
        plan = scored_plan(workers=3, timeout=5.0, presort=True)
        assert ExecutionPlan.from_dict(plan.to_dict()) == plan

    def test_dict_round_trip_without_candidates(self):
        plan = ExecutionPlan(algorithm="sj2", requested="sj2",
                             buffer_kb=64.0)
        assert ExecutionPlan.from_dict(plan.to_dict()) == plan

    def test_from_dict_ignores_cache_key_and_unknowns(self):
        data = scored_plan().to_dict()
        data["cache_key"] = "not-a-real-digest"
        data["future_field"] = True
        assert ExecutionPlan.from_dict(data) == scored_plan()

    def test_spec_round_trip(self):
        spec = JoinSpec(algorithm="sj3", buffer_kb=32.0, presort=True,
                        sort_mode="maintained", workers=2,
                        predicate=SpatialPredicate.WITHIN, timeout=9.0)
        assert ExecutionPlan.from_spec(spec).to_spec() == spec

    def test_to_spec_is_concrete(self):
        spec = scored_plan().to_spec()
        assert spec.algorithm == "sj4"
        assert spec.predicate is SpatialPredicate.INTERSECTS


class TestCacheKey:
    def test_stable_across_equal_plans(self):
        assert scored_plan().cache_key == scored_plan().cache_key

    def test_ignores_advisory_fields(self):
        # A deadline, tracing, or the scored table never change the
        # result, so they must not fragment the cache.
        base = scored_plan()
        assert base.cache_key == replace(base, timeout=1.0).cache_key
        assert base.cache_key == replace(base, trace=True).cache_key
        assert base.cache_key == replace(base, candidates=(),
                                         reason="").cache_key

    def test_sensitive_to_execution_fields(self):
        base = scored_plan()
        assert base.cache_key != replace(base, algorithm="sj1").cache_key
        assert base.cache_key != replace(base, buffer_kb=8.0).cache_key
        assert base.cache_key != replace(base, presort=True).cache_key
        assert base.cache_key != replace(base, workers=2).cache_key
