"""The single authoritative algorithm registry."""

import pytest

from repro.core.engine import JoinAlgorithm
from repro.core.planner import ALGORITHMS as PLANNER_ALGORITHMS
from repro.core.spec import JoinSpec
from repro.plan import (ALGORITHMS, AUTO, AUTO_CANDIDATES,
                        algorithm_choices, algorithm_names,
                        make_algorithm, validate_algorithm)


class TestRegistry:
    def test_paper_algorithms_present(self):
        for name in ("sj1", "sj2", "sj3", "sj4", "sj5"):
            assert name in ALGORITHMS

    def test_names_sorted_and_concrete(self):
        names = algorithm_names()
        assert list(names) == sorted(ALGORITHMS)
        assert AUTO not in names

    def test_choices_are_names_plus_auto(self):
        assert algorithm_choices() == algorithm_names() + (AUTO,)

    def test_planner_reexport_is_same_object(self):
        # Backward compatibility: repro.core.planner.ALGORITHMS must be
        # the registry, not a copy that could drift.
        assert PLANNER_ALGORITHMS is ALGORITHMS

    def test_auto_candidates_are_registered(self):
        for name in AUTO_CANDIDATES:
            assert name in ALGORITHMS


class TestValidateAlgorithm:
    def test_normalizes_case(self):
        assert validate_algorithm("SJ4") == "sj4"
        assert validate_algorithm("Auto") == "auto"

    def test_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown join algorithm"):
            validate_algorithm("sj9")

    def test_error_lists_choices(self):
        with pytest.raises(ValueError, match="auto"):
            validate_algorithm("nope")


class TestMakeAlgorithm:
    def test_instantiates_every_concrete_name(self):
        for name in algorithm_names():
            assert isinstance(make_algorithm(name), JoinAlgorithm)

    def test_auto_is_not_instantiable(self):
        with pytest.raises(ValueError, match="plan_join"):
            make_algorithm("auto")

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown join algorithm"):
            make_algorithm("sj0")


class TestSpecAcceptsRegistry:
    def test_spec_accepts_every_choice(self):
        for name in algorithm_choices():
            assert JoinSpec(algorithm=name).algorithm == name

    def test_spec_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown join algorithm"):
            JoinSpec(algorithm="sj9")


class TestCLIFromRegistry:
    def test_join_algorithm_choices_generated(self):
        from repro.cli import _build_parser
        parser = _build_parser()
        args = parser.parse_args(["join", "l", "r", "--algorithm",
                                  "auto"])
        assert args.algorithm == "auto"

    def test_query_algorithm_choices_generated(self):
        from repro.cli import _build_parser
        parser = _build_parser()
        args = parser.parse_args(
            ["query", "--connect", "h:1", "--join", "a", "b",
             "--algorithm", "auto", "--explain"])
        assert args.algorithm == "auto"
        assert args.explain
