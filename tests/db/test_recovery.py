"""Checkpoint + WAL recovery of a data directory."""

import json
import os

import pytest

from repro.db.database import SpatialDatabase
from repro.db.durability import DurabilityManager
from repro.db.recovery import (MANIFEST, RecoveryError, apply_record,
                               list_checkpoints, list_wal_segments,
                               read_manifest, recover)
from repro.geometry.rect import Rect
from repro.rtree.validate import validate_rtree
from repro.storage.faults import KillPlan, KillSwitch, SimulatedCrash


def _open(data_dir, **kwargs):
    return DurabilityManager.open(str(data_dir), **kwargs)


def _abandon(manager):
    """Simulate process death: drop the WAL handle without checkpoint."""
    if not manager.wal._file.closed:
        manager.wal._file.close()


class TestFreshDirectory:
    def test_starts_empty(self, tmp_path):
        db, manager = _open(tmp_path / "data")
        assert db.relations == {}
        assert manager.recovery.replayed == 0
        manager.close()

    def test_creates_manifest_layout(self, tmp_path):
        db, manager = _open(tmp_path / "data")
        db.create_relation("roads")
        manager.close()
        names = sorted(os.listdir(tmp_path / "data"))
        assert MANIFEST in names
        assert any(name.startswith("ckpt-") for name in names)
        assert any(name.startswith("wal-") for name in names)

    def test_page_size_is_persisted(self, tmp_path):
        db, manager = _open(tmp_path / "data", page_size=1024)
        db.create_relation("roads")
        manager.close()
        db2, manager2 = _open(tmp_path / "data")
        assert db2.page_size == 1024
        manager2.close()


class TestReplay:
    def test_graceful_close_replays_nothing(self, tmp_path):
        db, manager = _open(tmp_path / "data")
        rel = db.create_relation("roads")
        for i in range(10):
            rel.insert(Rect(i, i, i + 1, i + 1))
        manager.close()
        db2, manager2 = _open(tmp_path / "data")
        assert manager2.recovery.replayed == 0
        assert len(db2.relations["roads"]) == 10
        manager2.close()

    def test_crash_replays_the_tail(self, tmp_path):
        db, manager = _open(tmp_path / "data", checkpoint_every=1000)
        rel = db.create_relation("roads")
        oids = [rel.insert(Rect(i, i, i + 1, i + 1)) for i in range(8)]
        rel.delete(oids[3])
        _abandon(manager)
        db2, manager2 = _open(tmp_path / "data")
        info = manager2.recovery
        assert info.replayed == 10          # create + 8 inserts + delete
        recovered = db2.relations["roads"]
        assert sorted(recovered.objects) == sorted(
            oid for oid in oids if oid != oids[3])
        validate_rtree(recovered.tree)
        manager2.close()

    def test_geometry_round_trips_exactly(self, tmp_path):
        db, manager = _open(tmp_path / "data")
        rel = db.create_relation("r")
        rect = Rect(0.1 + 0.2, 1e-17, 3.14159265358979, 1e300)
        oid = rel.insert(rect)
        _abandon(manager)
        db2, manager2 = _open(tmp_path / "data")
        assert db2.relations["r"].objects[oid] == rect
        manager2.close()

    def test_replay_is_idempotent_across_checkpoint(self, tmp_path):
        # Records already covered by the checkpoint must be skipped,
        # not re-applied.
        db, manager = _open(tmp_path / "data", checkpoint_every=5)
        rel = db.create_relation("roads")
        for i in range(12):
            rel.insert(Rect(i, i, i + 1, i + 1))
        _abandon(manager)
        db2, manager2 = _open(tmp_path / "data")
        assert len(db2.relations["roads"]) == 12
        assert manager2.recovery.replayed \
            + manager2.recovery.checkpoint_lsn >= 13
        manager2.close()

    def test_drop_and_recreate_replay(self, tmp_path):
        db, manager = _open(tmp_path / "data", checkpoint_every=1000)
        db.create_relation("a")
        db.relations["a"].insert(Rect(0, 0, 1, 1))
        db.drop_relation("a")
        db.create_relation("a")
        db.relations["a"].insert(Rect(5, 5, 6, 6), oid=77)
        _abandon(manager)
        db2, manager2 = _open(tmp_path / "data")
        assert sorted(db2.relations["a"].objects) == [77]
        manager2.close()

    def test_torn_tail_is_truncated(self, tmp_path):
        db, manager = _open(tmp_path / "data", checkpoint_every=1000)
        db.create_relation("roads")
        db.relations["roads"].insert(Rect(0, 0, 1, 1))
        wal_path = manager.wal.path
        _abandon(manager)
        with open(wal_path, "ab") as handle:
            handle.write(b"\x10\x00\x00\x00torn!")
        db2, manager2 = _open(tmp_path / "data")
        assert manager2.recovery.truncated_bytes > 0
        assert len(db2.relations["roads"]) == 1
        manager2.close()


class TestApplyRecord:
    def test_idempotent_skips(self):
        db = SpatialDatabase()
        assert apply_record(db, {"op": "create", "rel": "a"}) is True
        assert apply_record(db, {"op": "create", "rel": "a"}) is False
        line = "5 rect 0.0 0.0 1.0 1.0"
        insert = {"op": "insert", "rel": "a", "oid": 5, "geom": line}
        assert apply_record(db, insert) is True
        assert apply_record(db, insert) is False
        delete = {"op": "delete", "rel": "a", "oid": 5}
        assert apply_record(db, delete) is True
        assert apply_record(db, delete) is False
        assert apply_record(db, {"op": "drop", "rel": "a"}) is True
        assert apply_record(db, {"op": "drop", "rel": "a"}) is False

    def test_ops_on_missing_relation_skip(self):
        db = SpatialDatabase()
        assert apply_record(db, {"op": "insert", "rel": "ghost",
                                 "oid": 1,
                                 "geom": "1 rect 0.0 0.0 1.0 1.0"}) \
            is False
        assert apply_record(db, {"op": "delete", "rel": "ghost",
                                 "oid": 1}) is False

    def test_unknown_op_is_fatal(self):
        with pytest.raises(RecoveryError):
            apply_record(SpatialDatabase(), {"op": "truncate"})


class TestCheckpointCrashWindows:
    def _run_until_crash(self, data_dir, point):
        kill = KillSwitch(KillPlan(seed=3, points={point: 1.0}))
        db, manager = _open(data_dir, checkpoint_every=4, kill=kill)
        with pytest.raises(SimulatedCrash):
            rel = db.create_relation("roads")
            for i in range(30):
                rel.insert(Rect(i, i, i + 1, i + 1))
        _abandon(manager)

    @pytest.mark.parametrize("point", ["checkpoint.before_rename",
                                       "checkpoint.after_rename",
                                       "checkpoint.before_gc"])
    def test_recovers_consistently(self, tmp_path, point):
        data_dir = tmp_path / "data"
        self._run_until_crash(data_dir, point)
        db, manager = _open(data_dir)
        # Everything the crashed run logged before the kill is acked
        # state and must be present; the checkpoint machinery crashed,
        # the data must not care.
        relation = db.relations["roads"]
        assert len(relation) >= 3
        validate_rtree(relation.tree)
        # The directory converged: exactly one checkpoint referenced,
        # debris gone.
        manifest = read_manifest(str(data_dir))
        checkpoints = list_checkpoints(str(data_dir))
        if manifest is not None and manifest["checkpoint"] is not None:
            assert checkpoints == [manifest["checkpoint_id"]]
        else:
            # The crash beat the very first checkpoint: recovery ran
            # from the WAL alone and swept the staging debris.
            assert checkpoints == []
        assert not [name for name in os.listdir(data_dir)
                    if name.endswith(".tmp")]
        manager.close()

    def test_gc_drops_covered_segments(self, tmp_path):
        data_dir = tmp_path / "data"
        db, manager = _open(data_dir, checkpoint_every=5)
        rel = db.create_relation("roads")
        for i in range(23):
            rel.insert(Rect(i, i, i + 1, i + 1))
        manager.close()
        segments = list_wal_segments(str(data_dir))
        assert len(segments) == 1           # only the active one

    def test_recovery_is_deterministic(self, tmp_path):
        data_dir = tmp_path / "data"
        db, manager = _open(data_dir, checkpoint_every=4)
        rel = db.create_relation("roads")
        for i in range(13):
            rel.insert(Rect(i, i, i + 1, i + 1))
        _abandon(manager)
        first = recover(str(data_dir))
        snapshot1 = dict(first.db.relations["roads"].objects)
        first.wal.close()
        second = recover(str(data_dir))
        snapshot2 = dict(second.db.relations["roads"].objects)
        second.wal.close()
        assert snapshot1 == snapshot2


class TestDeltaModeRecovery:
    """Recovery with MVCC delta ingest active: mutations absorbed by
    the write-side delta are WAL-logged exactly like direct ones, so a
    crash loses nothing and replay is idempotent regardless of how many
    rebuild points ran before the crash."""

    def _mutate(self, db):
        rel = db.create_relation("roads")
        db.set_ingest_mode("delta")
        oids = [rel.insert(Rect(i, i, i + 1, i + 1)) for i in range(9)]
        rel.delete(oids[4])
        return [oid for oid in oids if oid != oids[4]]

    def test_unmerged_delta_writes_survive_a_crash(self, tmp_path):
        db, manager = _open(tmp_path / "data", checkpoint_every=1000)
        live = self._mutate(db)            # everything still in the delta
        assert db.relations["roads"].delta_ops_pending > 0
        _abandon(manager)
        db2, manager2 = _open(tmp_path / "data")
        assert sorted(db2.relations["roads"].objects) == sorted(live)
        validate_rtree(db2.relations["roads"].tree)
        manager2.close()

    def test_rebuild_points_do_not_change_recovery(self, tmp_path):
        # Same logical history, one run merged mid-stream: recovered
        # states must be identical (rebuilds are not logged — they are
        # pure reorganisation).
        plain, flushed = tmp_path / "plain", tmp_path / "flushed"
        db_a, manager_a = _open(plain, checkpoint_every=1000)
        self._mutate(db_a)
        _abandon(manager_a)
        db_b, manager_b = _open(flushed, checkpoint_every=1000)
        self._mutate(db_b)
        assert db_b.flush_deltas() >= 1
        db_b.relations["roads"].insert(Rect(50, 50, 51, 51), oid=500)
        _abandon(manager_b)
        rec_a, mgr_a = _open(plain)
        rec_b, mgr_b = _open(flushed)
        extra = {500}
        assert set(rec_b.relations["roads"].objects) \
            == set(rec_a.relations["roads"].objects) | extra
        mgr_a.close()
        mgr_b.close()

    def test_recovery_is_idempotent_with_delta_history(self, tmp_path):
        data_dir = tmp_path / "data"
        db, manager = _open(data_dir, checkpoint_every=4)
        self._mutate(db)
        db.flush_deltas()
        db.relations["roads"].insert(Rect(20, 20, 21, 21))
        _abandon(manager)
        first = recover(str(data_dir))
        snapshot1 = dict(first.db.relations["roads"].objects)
        first.wal.close()
        second = recover(str(data_dir))
        snapshot2 = dict(second.db.relations["roads"].objects)
        second.wal.close()
        assert snapshot1 == snapshot2

    def test_recovered_database_resumes_delta_ingest(self, tmp_path):
        # Recovery lands in direct mode; the service layer re-arms the
        # delta path, and further MVCC writes keep working on top of
        # the recovered base trees.
        db, manager = _open(tmp_path / "data", checkpoint_every=1000)
        live = self._mutate(db)
        _abandon(manager)
        db2, manager2 = _open(tmp_path / "data")
        db2.set_ingest_mode("delta")
        rel = db2.relations["roads"]
        new_oid = rel.insert(Rect(30, 30, 31, 31))
        assert sorted(rel.objects) == sorted(live + [new_oid])
        assert rel.delta_ops_pending > 0
        rel.rebuild()
        assert rel.delta_ops_pending == 0
        assert sorted(rel.objects) == sorted(live + [new_oid])
        manager2.close()


class TestManifest:
    def test_corrupt_manifest_is_fatal(self, tmp_path):
        data_dir = tmp_path / "data"
        db, manager = _open(data_dir)
        db.create_relation("roads")
        manager.close()
        with open(data_dir / MANIFEST, "w") as handle:
            handle.write("{ not json")
        with pytest.raises(RecoveryError):
            recover(str(data_dir))

    def test_unsupported_version_is_fatal(self, tmp_path):
        data_dir = tmp_path / "data"
        data_dir.mkdir()
        with open(data_dir / MANIFEST, "w") as handle:
            json.dump({"version": 99}, handle)
        with pytest.raises(RecoveryError):
            recover(str(data_dir))

    def test_missing_checkpoint_is_fatal(self, tmp_path):
        data_dir = tmp_path / "data"
        db, manager = _open(data_dir)
        db.create_relation("roads")
        manager.close()
        manifest = read_manifest(str(data_dir))
        import shutil
        shutil.rmtree(data_dir / manifest["checkpoint"])
        with pytest.raises(RecoveryError):
            recover(str(data_dir))


class TestMetrics:
    def test_recovery_counters_emitted(self, tmp_path):
        from repro.obs.core import Observability
        db, manager = _open(tmp_path / "data", checkpoint_every=1000)
        db.create_relation("roads")
        db.relations["roads"].insert(Rect(0, 0, 1, 1))
        _abandon(manager)
        obs = Observability()
        db2, manager2 = DurabilityManager.open(str(tmp_path / "data"),
                                               obs=obs)
        assert obs.metrics.counters["serve.recovery.replayed"] == 2
        assert "serve.recovery.ms" in obs.metrics.gauges
        manager2.close()

    def test_status_shape(self, tmp_path):
        db, manager = _open(tmp_path / "data")
        db.create_relation("roads")
        status = manager.status()
        for key in ("checkpoint_id", "last_lsn", "applied_lsn",
                    "sync", "wal_appends", "dirty_records", "recovery"):
            assert key in status
        assert status["dirty_records"] == 1
        manager.close()
