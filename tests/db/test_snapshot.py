"""Tests for MVCC snapshots: isolation, visibility, epoch semantics."""

import random

import pytest

from repro.db.relation import SpatialRelation
from repro.errors import CatalogError
from repro.geometry import Rect


def rect(x, y, w=5.0, h=5.0):
    return Rect(x, y, x + w, y + h)


def build_relation(n=60, seed=3, ingest="delta"):
    relation = SpatialRelation("roads", page_size=1024)
    rng = random.Random(seed)
    for _ in range(n):
        relation.insert(rect(rng.uniform(0, 200), rng.uniform(0, 200)))
    relation.set_ingest_mode(ingest)
    return relation


class TestIsolation:
    def test_snapshot_does_not_see_later_writes(self):
        relation = build_relation()
        before = relation.snapshot()
        count = len(before)
        new_oid = relation.insert(rect(300, 300))
        relation.delete(0)
        assert len(before) == count
        assert new_oid not in before
        assert 0 in before
        after = relation.snapshot()
        assert new_oid in after and 0 not in after

    def test_snapshot_survives_rebuild(self):
        relation = build_relation()
        relation.insert(rect(300, 300))
        relation.delete(1)
        before = relation.snapshot()
        visible = dict(before.objects)
        assert relation.rebuild()
        # The old snapshot still reads through its frozen delta over
        # the old tree; the data it exposes is unchanged.
        assert dict(before.objects) == visible
        assert dict(relation.snapshot().objects) == visible

    def test_same_epoch_returns_same_snapshot(self):
        relation = build_relation()
        assert relation.snapshot() is relation.snapshot()
        relation.insert(rect(1, 1))
        assert relation.snapshot() is not None


class TestVisibility:
    def test_merged_mapping_protocol(self):
        relation = build_relation(n=10)
        added = relation.insert(rect(50, 50))
        relation.delete(0)
        snap = relation.snapshot()
        objects = snap.objects
        assert len(objects) == 10
        assert added in objects and 0 not in objects
        assert set(iter(objects)) == set(objects.keys())
        assert objects[added] == rect(50, 50)
        with pytest.raises(KeyError):
            objects[0]

    def test_reinsert_after_delete_shows_new_geometry(self):
        relation = build_relation(n=5)
        relation.delete(2)
        relation.insert(rect(99, 99), oid=2)
        snap = relation.snapshot()
        assert snap.get(2) == rect(99, 99)
        assert snap.objects[2] == rect(99, 99)

    def test_get_raises_catalog_error_for_hidden(self):
        relation = build_relation(n=5)
        relation.delete(3)
        with pytest.raises(CatalogError):
            relation.snapshot().get(3)

    def test_duplicate_insert_rejected_against_merged_view(self):
        relation = build_relation(n=5)
        new_oid = relation.insert(rect(10, 10))
        with pytest.raises(CatalogError):
            relation.insert(rect(0, 0), oid=new_oid)
        with pytest.raises(CatalogError):
            relation.insert(rect(0, 0), oid=0)       # base row

    def test_window_refs_matches_brute_force(self):
        relation = build_relation(n=80, seed=9)
        rng = random.Random(1)
        for _ in range(25):
            relation.insert(rect(rng.uniform(0, 200),
                                 rng.uniform(0, 200)))
        for oid in (0, 5, 17):
            relation.delete(oid)
        snap = relation.snapshot()
        for _ in range(20):
            window = rect(rng.uniform(0, 160), rng.uniform(0, 160),
                          40, 40)
            expected = sorted(oid for oid, g in snap.objects.items()
                              if g.intersects(window))
            assert sorted(snap.window_refs(window)) == expected


class TestEpochs:
    def test_delta_write_bumps_epoch_only(self):
        relation = build_relation()
        epoch, base = relation.epoch, relation.base_epoch
        relation.insert(rect(1, 1))
        assert relation.epoch == epoch + 1
        assert relation.base_epoch == base

    def test_rebuild_bumps_base_epoch_only(self):
        relation = build_relation()
        relation.insert(rect(1, 1))
        epoch, base = relation.epoch, relation.base_epoch
        assert relation.rebuild()
        assert relation.epoch == epoch
        assert relation.base_epoch == base + 1
        assert relation.delta_ops_pending == 0

    def test_direct_write_bumps_both(self):
        relation = build_relation(ingest="direct")
        epoch, base = relation.epoch, relation.base_epoch
        relation.insert(rect(1, 1))
        assert relation.epoch == epoch + 1
        assert relation.base_epoch == base + 1

    def test_rebuild_without_pending_delta_is_a_noop(self):
        relation = build_relation()
        assert relation.rebuild() is False

    def test_switching_to_direct_flushes(self):
        relation = build_relation(n=10)
        added = relation.insert(rect(70, 70))
        relation.delete(0)
        relation.set_ingest_mode("direct")
        assert relation.delta_ops_pending == 0
        assert added in relation.objects and 0 not in relation.objects
        # The tree itself now holds the merged records.
        refs = list(relation.tree.window_query(rect(69, 69, 10, 10)))
        assert added in refs
