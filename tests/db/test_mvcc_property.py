"""Property-based MVCC equivalence: any interleaving of writes and
rebuild flush points over delta ingest is indistinguishable from
direct in-place mutation.

The invariant: after applying the same operation sequence to a
delta-mode database (with rebuilds forced at arbitrary positions) and
to a direct-mode reference, the visible state — object tables, window
queries, k-NN, joins — is identical.  Rebuilds move data between the
delta and the base tree but must never change what a reader sees.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import JoinSpec
from repro.db import SpatialDatabase
from repro.geometry import Rect

WORLD = 120.0

#: op kinds: weighted towards inserts so deletes have targets.
_ops = st.lists(
    st.tuples(st.sampled_from(["insert", "insert", "insert",
                               "delete", "rebuild"]),
              st.sampled_from(["left", "right"]),
              st.integers(0, 2 ** 16)),
    min_size=1, max_size=40)


def _rect(rng):
    x, y = rng.uniform(0, WORLD), rng.uniform(0, WORLD)
    return Rect(x, y, x + rng.uniform(1, 18), y + rng.uniform(1, 18))


def _build(ingest, seed=17, n=15):
    db = SpatialDatabase(page_size=1024)
    rng = random.Random(seed)
    for name in ("left", "right"):
        relation = db.create_relation(name)
        for _ in range(n):
            relation.insert(_rect(rng))
    db.set_ingest_mode(ingest)
    return db


def _apply(db, ops, *, rebuilds):
    """Apply the op stream; *rebuilds* toggles honoring rebuild ops
    (the direct-mode reference has no delta to merge)."""
    for kind, name, nonce in ops:
        relation = db.relation(name)
        rng = random.Random(nonce)
        if kind == "insert":
            relation.insert(_rect(rng))
        elif kind == "delete":
            visible = sorted(relation.objects)
            if visible:
                relation.delete(visible[nonce % len(visible)])
        elif rebuilds:
            relation.rebuild()


def _observe(db):
    """Everything a reader can see, as comparable primitives."""
    state = {}
    for name in ("left", "right"):
        snap = db.relation(name).snapshot()
        state[name] = sorted(snap.objects.items())
        state[f"{name}/window"] = sorted(
            snap.window_refs(Rect(20, 20, 90, 90)))
        state[f"{name}/knn"] = [
            (oid, round(dist, 9))
            for oid, dist in snap.nearest(60.0, 60.0, k=4)]
    spec = JoinSpec(algorithm="sj4", buffer_kb=64.0)
    state["join"] = sorted(db.join("left", "right", spec=spec).pairs)
    return state


@settings(max_examples=60, deadline=None)
@given(ops=_ops)
def test_delta_interleaving_equals_direct(ops):
    delta_db = _build("delta")
    direct_db = _build("direct")
    _apply(delta_db, ops, rebuilds=True)
    _apply(direct_db, ops, rebuilds=False)
    assert _observe(delta_db) == _observe(direct_db)


@settings(max_examples=30, deadline=None)
@given(ops=_ops, final_flush=st.booleans())
def test_rebuild_points_are_invisible(ops, final_flush):
    """The same stream with and without rebuild points reads equal;
    a trailing full flush changes nothing either."""
    with_rebuilds = _build("delta")
    without = _build("delta")
    _apply(with_rebuilds, ops, rebuilds=True)
    _apply(without, ops, rebuilds=False)
    if final_flush:
        for name in ("left", "right"):
            with_rebuilds.relation(name).rebuild()
    assert _observe(with_rebuilds) == _observe(without)


@settings(max_examples=30, deadline=None)
@given(ops=_ops)
def test_oid_assignment_is_mode_independent(ops):
    """Auto-assigned ids must not depend on the ingest mode, or WAL
    replay across a mode switch would diverge."""
    delta_db = _build("delta")
    direct_db = _build("direct")
    _apply(delta_db, ops, rebuilds=True)
    _apply(direct_db, ops, rebuilds=False)
    for name in ("left", "right"):
        assert sorted(delta_db.relation(name).objects) == \
            sorted(direct_db.relation(name).objects)
