"""Tests for the SpatialDatabase facade."""

import random

import pytest

from repro.db import SpatialDatabase
from repro.geometry import Polygon, Polyline, Rect, SpatialPredicate
from repro.core import JoinSpec


@pytest.fixture
def db():
    database = SpatialDatabase(page_size=1024)
    streets = database.create_relation("streets")
    zones = database.create_relation("zones")
    rng = random.Random(3)
    for _ in range(300):
        x, y = rng.random() * 100, rng.random() * 100
        dx, dy = rng.random() * 5, rng.random() * 5
        streets.insert(Polyline([(x, y), (x + dx, y + dy)]))
    for _ in range(60):
        x, y = rng.random() * 90, rng.random() * 90
        zones.insert(Polygon([(x, y), (x + 10, y), (x + 10, y + 10),
                              (x, y + 10)]))
    return database


class TestCatalog:
    def test_create_and_lookup(self, db):
        assert "streets" in db and "zones" in db
        assert len(db) == 2
        assert len(db.relation("streets")) == 300

    def test_duplicate_relation_rejected(self, db):
        with pytest.raises(KeyError):
            db.create_relation("streets")

    def test_drop(self, db):
        db.drop_relation("zones")
        assert "zones" not in db
        with pytest.raises(KeyError):
            db.relation("zones")
        with pytest.raises(KeyError):
            db.drop_relation("zones")

    def test_catalog_errors_are_lookup_errors(self, db):
        from repro.errors import CatalogError
        with pytest.raises(CatalogError):
            db.relation("nope")
        with pytest.raises(CatalogError):
            db.create_relation("streets")

    def test_epochs_visible_through_database(self, db):
        # Relation mutations bump the relation's own epoch …
        streets = db.relation("streets")
        before = streets.epoch
        oid = streets.insert(Rect(1, 1, 2, 2))
        assert db.relation("streets").epoch == before + 1
        streets.delete(oid)
        assert db.relation("streets").epoch == before + 2
        # … while catalog changes bump the database's epoch, so a
        # dropped-and-recreated name is distinguishable even though
        # the fresh relation's epoch restarts at zero.
        catalog = db.epoch
        db.drop_relation("zones")
        recreated = db.create_relation("zones")
        assert db.epoch == catalog + 2
        assert recreated.epoch == 0


class TestJoins:
    def test_filter_join(self, db):
        result = db.join("streets", "zones", spec=JoinSpec(buffer_kb=32))
        streets = db.relation("streets")
        zones = db.relation("zones")
        expected = {(a, b)
                    for rect_a, a in streets.records
                    for rect_b, b in zones.records
                    if rect_a.intersects(rect_b)}
        assert result.pair_set() == expected

    def test_refined_join_is_subset(self, db):
        coarse = db.join("streets", "zones", spec=JoinSpec(buffer_kb=32))
        fine = db.join("streets", "zones", refine=True,
                       spec=JoinSpec(buffer_kb=32))
        assert fine.pair_set() <= coarse.pair_set()
        streets = db.relation("streets")
        zones = db.relation("zones")
        # Oracle on a sample: exact polyline-polygon tests.
        for a, b in list(fine.pair_set())[:50]:
            from repro.core.refinement import _exact_intersects
            assert _exact_intersects(streets.get(a), zones.get(b))

    def test_predicate_join(self, db):
        result = db.join("zones", "streets",
                         spec=JoinSpec(buffer_kb=32, predicate=SpatialPredicate.CONTAINS))
        zones = db.relation("zones")
        streets = db.relation("streets")
        expected = {(z, s)
                    for rect_z, z in zones.records
                    for rect_s, s in streets.records
                    if rect_z.contains(rect_s)}
        assert result.pair_set() == expected

    def test_distance_join(self, db):
        near = db.distance_join("streets", "zones", 5.0, buffer_kb=32)
        touching = db.join("streets", "zones", spec=JoinSpec(buffer_kb=32))
        assert touching.pair_set() <= near.pair_set()
        from repro.core import rect_mindist
        streets = db.relation("streets")
        zones = db.relation("zones")
        expected = {(a, b)
                    for rect_a, a in streets.records
                    for rect_b, b in zones.records
                    if rect_mindist(rect_a, rect_b) <= 5.0}
        assert near.pair_set() == expected

    def test_refine_with_containment_rejected(self, db):
        with pytest.raises(ValueError):
            db.join("zones", "streets", refine=True,
                    spec=JoinSpec(predicate=SpatialPredicate.CONTAINS))

    def test_refine_keeps_rect_objects(self):
        database = SpatialDatabase()
        boxes = database.create_relation("boxes")
        lines = database.create_relation("lines")
        boxes.insert(Rect(0, 0, 10, 10))
        lines.insert(Polyline([(5, 5), (6, 6)]))
        result = database.join("boxes", "lines", refine=True)
        assert result.pair_set() == {(0, 0)}


class TestPersistence:
    def test_roundtrip(self, db, tmp_path):
        directory = str(tmp_path / "catalog")
        db.save(directory)
        reopened = SpatialDatabase.open(directory)
        assert set(reopened.relations) == {"streets", "zones"}
        assert len(reopened.relation("streets")) == 300
        before = db.join("streets", "zones",
                         spec=JoinSpec(buffer_kb=32)).pair_set()
        after = reopened.join("streets", "zones",
                              spec=JoinSpec(buffer_kb=32)).pair_set()
        assert after == before

    def test_reopened_database_is_updatable(self, db, tmp_path):
        directory = str(tmp_path / "catalog")
        db.save(directory)
        reopened = SpatialDatabase.open(directory)
        streets = reopened.relation("streets")
        new_id = streets.insert(Polyline([(0, 0), (1, 1)]))
        assert new_id == 300
        streets.delete(new_id)

    def test_geometry_kinds_roundtrip(self, tmp_path):
        database = SpatialDatabase()
        mixed = database.create_relation("mixed")
        mixed.insert(Rect(0.5, 0.25, 1.75, 2.125))
        mixed.insert(Polyline([(0.1, 0.2), (0.3, 0.4), (0.5, 0.1)]))
        mixed.insert(Polygon([(0, 0), (1, 0), (0.5, 1.5)]))
        directory = str(tmp_path / "mixed-db")
        database.save(directory)
        reopened = SpatialDatabase.open(directory)
        relation = reopened.relation("mixed")
        assert relation.get(0) == Rect(0.5, 0.25, 1.75, 2.125)
        assert relation.get(1) == Polyline([(0.1, 0.2), (0.3, 0.4),
                                            (0.5, 0.1)])
        assert relation.get(2) == Polygon([(0, 0), (1, 0), (0.5, 1.5)])

    def test_corrupt_geometry_file_rejected(self, db, tmp_path):
        directory = str(tmp_path / "catalog")
        db.save(directory)
        with open(f"{directory}/zones.geom", "a") as handle:
            handle.write("not a geometry line\n")
        with pytest.raises(ValueError):
            SpatialDatabase.open(directory)

    def test_count_mismatch_rejected(self, db, tmp_path):
        directory = str(tmp_path / "catalog")
        db.save(directory)
        # Drop one geometry line: index and table disagree.
        path = f"{directory}/zones.geom"
        lines = open(path).read().splitlines()
        with open(path, "w") as handle:
            handle.write("\n".join(lines[:-1]) + "\n")
        with pytest.raises(ValueError, match="holds"):
            SpatialDatabase.open(directory)

    def test_bad_version_rejected(self, db, tmp_path):
        import json
        import os
        directory = str(tmp_path / "catalog")
        db.save(directory)
        manifest_path = os.path.join(directory, "manifest.json")
        manifest = json.load(open(manifest_path))
        manifest["version"] = 99
        json.dump(manifest, open(manifest_path, "w"))
        with pytest.raises(ValueError, match="version"):
            SpatialDatabase.open(directory)
