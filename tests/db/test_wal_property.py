"""Property-based WAL replay: idempotence over arbitrary prefixes.

The recovery invariant under test: for *any* crash position in the log
(any prefix of the record stream) and *any* double-delivery (the same
prefix replayed twice — which is what happens when a crash interrupts
recovery itself and it reruns), the resulting catalog is identical to
a single clean replay: same relations, same objects, same epochs, and
validate-clean trees.
"""

import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.chaos import generate_workload
from repro.db.database import SpatialDatabase
from repro.db.durability import DurabilityManager
from repro.db.recovery import apply_record
from repro.rtree.validate import validate_rtree
from repro.storage.wal import scan


def _wal_records(seed, num_ops):
    """Run a workload through a real DurabilityManager and return the
    WAL record payloads it produced (one segment: no checkpoints)."""
    with tempfile.TemporaryDirectory() as root:
        db, manager = DurabilityManager.open(root,
                                             checkpoint_every=10_000)
        from repro.db.chaos import _execute
        for op in generate_workload(seed, num_ops):
            _execute(db, op)
        path = manager.wal.path
        manager.wal.close()
        records, _valid, torn = scan(path)
        assert torn == 0
        return [record.payload for record in records]


def _snapshot(db):
    return {name: (relation.epoch,
                   sorted(relation.objects.items()))
            for name, relation in db.relations.items()}


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000),
       num_ops=st.integers(min_value=1, max_value=60),
       cut=st.floats(min_value=0.0, max_value=1.0),
       data=st.data())
def test_prefix_replayed_twice_equals_once(seed, num_ops, cut, data):
    records = _wal_records(seed, num_ops)
    prefix = records[:max(1, int(len(records) * cut))]

    once = SpatialDatabase()
    for payload in prefix:
        apply_record(once, payload)

    # A second, independent recovery of the same prefix (a crash
    # partway through replay discards the half-built catalog and
    # recovery reruns from scratch): identical catalog *and* epochs.
    partial = data.draw(st.integers(min_value=0,
                                    max_value=len(prefix)))
    rerun = SpatialDatabase()
    for payload in prefix[:partial]:
        apply_record(rerun, payload)
    del rerun                       # the crashed attempt evaporates
    rerun = SpatialDatabase()
    for payload in prefix:
        apply_record(rerun, payload)
    assert _snapshot(once) == _snapshot(rerun)

    # Safety net: even replaying the whole prefix a second time *on
    # top of* the recovered state (no LSN filtering at all) converges
    # to the same catalog — dropped relations are rebuilt and re-drop,
    # deleted objects re-insert and re-delete, nothing new survives.
    for payload in prefix:
        apply_record(rerun, payload)
    assert {name: sorted(relation.objects.items())
            for name, relation in rerun.relations.items()} \
        == {name: sorted(relation.objects.items())
            for name, relation in once.relations.items()}
    for relation in rerun.relations.values():
        validate_rtree(relation.tree)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_full_replay_matches_live_catalog(seed):
    """A clean replay of the whole log reproduces the catalog the live
    process had, object for object."""
    with tempfile.TemporaryDirectory() as root:
        db, manager = DurabilityManager.open(root,
                                             checkpoint_every=10_000)
        from repro.db.chaos import _execute
        for op in generate_workload(seed, 40):
            _execute(db, op)
        live = {name: sorted(relation.objects.items())
                for name, relation in db.relations.items()}
        path = manager.wal.path
        manager.wal.close()
        records, _valid, _torn = scan(path)

    replayed = SpatialDatabase()
    for record in records:
        apply_record(replayed, record.payload)
    assert {name: sorted(relation.objects.items())
            for name, relation in replayed.relations.items()} == live
