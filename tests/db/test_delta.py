"""Tests for the delta index: absorption, freezing, visibility."""

import random

import pytest

from repro.db.delta import DeltaIndex, FrozenDelta
from repro.geometry import Rect


def rect(x, y, w=4.0, h=4.0):
    return Rect(x, y, x + w, y + h)


class TestDeltaIndex:
    def test_insert_then_delete_cancels(self):
        delta = DeltaIndex()
        delta.insert(7, rect(0, 0))
        delta.delete(7)
        frozen = delta.freeze()
        assert 7 not in frozen.added
        assert 7 in frozen.deleted
        assert 7 in frozen.hidden

    def test_delete_then_reinsert_wins(self):
        delta = DeltaIndex()
        delta.delete(3)
        delta.insert(3, rect(5, 5))
        frozen = delta.freeze()
        assert frozen.added[3] == rect(5, 5)
        # The oid stays recorded as deleted (suppresses any base row),
        # but the added copy is authoritative.
        assert 3 in frozen.hidden

    def test_len_counts_operations(self):
        delta = DeltaIndex()
        assert len(delta) == 0 and not delta
        delta.insert(1, rect(0, 0))
        delta.delete(2)
        assert len(delta) == 2 and delta

    def test_empty_freeze_is_the_shared_singleton(self):
        assert DeltaIndex().freeze() is FrozenDelta.EMPTY
        assert not FrozenDelta.EMPTY

    def test_freeze_is_a_copy(self):
        delta = DeltaIndex()
        delta.insert(1, rect(0, 0))
        frozen = delta.freeze()
        delta.insert(2, rect(9, 9))
        delta.delete(1)
        assert set(frozen.added) == {1}
        assert not frozen.deleted

    def test_clear(self):
        delta = DeltaIndex()
        delta.insert(1, rect(0, 0))
        delta.delete(2)
        delta.clear()
        assert not delta


class TestFrozenDelta:
    def test_rows_are_xlo_sorted(self):
        delta = DeltaIndex()
        for oid, x in ((1, 30.0), (2, 10.0), (3, 20.0)):
            delta.insert(oid, rect(x, 0))
        frozen = delta.freeze()
        xls = [mbr.xl for _, mbr, _ in frozen.rows]
        assert xls == sorted(xls)
        assert frozen.order == (2, 3, 1)
        assert list(frozen.iter_added()) == list(frozen.rows)

    def test_added_in_matches_brute_force(self):
        rng = random.Random(5)
        delta = DeltaIndex()
        for oid in range(200):
            x, y = rng.uniform(0, 100), rng.uniform(0, 100)
            # Mixed widths so the bisect lower bound (xl >= window.xl
            # - max_width) is actually load-bearing.
            delta.insert(oid, rect(x, y, rng.uniform(0.1, 25),
                                   rng.uniform(0.1, 25)))
        frozen = delta.freeze()
        for _ in range(50):
            x, y = rng.uniform(-10, 100), rng.uniform(-10, 100)
            window = rect(x, y, 18, 18)
            expected = sorted(oid for oid, g in frozen.added.items()
                              if g.intersects(window))
            assert sorted(frozen.added_in(window)) == expected

    def test_added_in_empty_delta(self):
        assert FrozenDelta.EMPTY.added_in(rect(0, 0, 100, 100)) == []

    def test_combine_identity(self):
        delta = DeltaIndex()
        delta.insert(1, rect(0, 0))
        frozen = delta.freeze()
        assert FrozenDelta.EMPTY.combine(frozen) is frozen
        assert frozen.combine(FrozenDelta.EMPTY) is frozen

    def test_combine_newer_delete_cancels_older_add(self):
        older = FrozenDelta({1: rect(0, 0), 2: rect(5, 5)}, ())
        newer = FrozenDelta({}, (1,))
        merged = older.combine(newer)
        assert set(merged.added) == {2}
        assert 1 in merged.deleted

    def test_combine_newer_add_wins(self):
        older = FrozenDelta({1: rect(0, 0)}, (9,))
        newer = FrozenDelta({1: rect(7, 7)}, ())
        merged = older.combine(newer)
        assert merged.added[1] == rect(7, 7)
        # Older deletions keep suppressing base rows.
        assert 9 in merged.deleted

    def test_combine_equals_sequential_application(self):
        rng = random.Random(11)
        base = {oid: rect(rng.uniform(0, 50), rng.uniform(0, 50))
                for oid in range(30)}

        def apply(delta, table):
            table = {oid: g for oid, g in table.items()
                     if oid not in delta.hidden}
            table.update(delta.added)
            return table

        older = FrozenDelta({30: rect(1, 1), 31: rect(2, 2)},
                            (0, 1, 30))
        newer = FrozenDelta({30: rect(9, 9), 2: rect(3, 3)}, (31, 4))
        sequential = apply(newer, apply(older, base))
        combined = apply(older.combine(newer), base)
        assert sequential == combined

    def test_frozen_delta_is_immutable_shaped(self):
        frozen = FrozenDelta({1: rect(0, 0)}, (2,))
        with pytest.raises((AttributeError, TypeError)):
            frozen.deleted.add(3)
