"""The kill-point chaos harness, run at pytest scale.

The CI ``durability`` job runs hundreds of schedules through
``python -m repro.db.chaos``; here a smaller sweep keeps the harness
itself honest on every test run.
"""

from repro.db.chaos import (generate_workload, main, run_schedule,
                            run_schedules)


class TestWorkload:
    def test_deterministic(self):
        assert generate_workload(7, 50) == generate_workload(7, 50)

    def test_valid_in_order(self):
        # Applying the ops in sequence must never hit an invalid one.
        model = {}
        for op in generate_workload(11, 200):
            if op[0] == "create":
                assert op[1] not in model
                model[op[1]] = set()
            elif op[0] == "drop":
                assert op[1] in model
                del model[op[1]]
            elif op[0] == "insert":
                assert op[2] not in model[op[1]]
                model[op[1]].add(op[2])
            else:
                assert op[2] in model[op[1]]
                model[op[1]].discard(op[2])

    def test_mixes_op_kinds(self):
        kinds = {op[0] for op in generate_workload(3, 300)}
        assert kinds == {"create", "drop", "insert", "delete"}


class TestSchedules:
    def test_single_schedule_passes(self):
        outcome = run_schedule(2, num_ops=30)
        assert outcome.ok, outcome.error
        assert outcome.incarnations >= 1

    def test_sweep_passes_both_sync_modes(self):
        results = run_schedules(8, num_ops=25)
        assert all(outcome.ok for outcome in results), \
            [outcome.error for outcome in results if not outcome.ok]
        assert {outcome.sync for outcome in results} \
            == {"always", "batch"}
        # The sweep is only meaningful if kills actually happened.
        assert sum(outcome.kills for outcome in results) > 0

    def test_schedules_are_reproducible(self):
        first = run_schedule(5, num_ops=30)
        second = run_schedule(5, num_ops=30)
        assert (first.kills, first.incarnations, first.replayed,
                first.final_objects) \
            == (second.kills, second.incarnations, second.replayed,
                second.final_objects)

    def test_cli_exit_status(self, capsys):
        assert main(["--schedules", "2", "--ops", "15"]) == 0
        out = capsys.readouterr().out
        assert "2 schedules" in out
        assert "0 failures" in out


class TestDeltaIngest:
    """The same kill/recover schedules with MVCC delta ingest active:
    crashes land before, during accumulation of, and after background
    merges, and recovery must still converge on the direct-mode model."""

    def test_single_delta_schedule_passes(self):
        outcome = run_schedule(2, num_ops=30, ingest="delta")
        assert outcome.ok, outcome.error
        assert outcome.ingest == "delta"

    def test_delta_sweep_passes_and_merges(self):
        results = run_schedules(8, num_ops=25, ingest="delta")
        assert all(outcome.ok for outcome in results), \
            [outcome.error for outcome in results if not outcome.ok]
        # Kills and mid-workload rebuild points both actually happened,
        # otherwise the sweep proves nothing about the delta path.
        assert sum(outcome.kills for outcome in results) > 0
        assert sum(outcome.rebuilds for outcome in results) > 0

    def test_delta_schedules_are_reproducible(self):
        first = run_schedule(5, num_ops=30, ingest="delta")
        second = run_schedule(5, num_ops=30, ingest="delta")
        assert (first.kills, first.incarnations, first.replayed,
                first.rebuilds, first.final_objects) \
            == (second.kills, second.incarnations, second.replayed,
                second.rebuilds, second.final_objects)

    def test_cli_delta_mode(self, capsys):
        assert main(["--schedules", "2", "--ops", "15",
                     "--ingest", "delta"]) == 0
        assert "0 failures" in capsys.readouterr().out
