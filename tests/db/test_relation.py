"""Tests for SpatialRelation."""

import pytest

from repro.db import SpatialRelation
from repro.geometry import Polygon, Polyline, Rect
from repro.rtree import validate_rtree


@pytest.fixture
def relation():
    rel = SpatialRelation("parcels", page_size=1024)
    rel.insert(Rect(0, 0, 10, 10))              # id 0
    rel.insert(Polyline([(20, 20), (30, 30)]))  # id 1
    rel.insert(Polygon([(40, 40), (50, 40), (45, 50)]))  # id 2
    return rel


class TestMaintenance:
    def test_auto_ids(self, relation):
        assert sorted(relation) == [0, 1, 2]
        assert len(relation) == 3

    def test_explicit_id(self, relation):
        oid = relation.insert(Rect(1, 1, 2, 2), oid=77)
        assert oid == 77
        # Auto ids continue above the explicit one.
        assert relation.insert(Rect(2, 2, 3, 3)) == 78

    def test_duplicate_id_rejected(self, relation):
        with pytest.raises(KeyError):
            relation.insert(Rect(0, 0, 1, 1), oid=0)

    def test_delete(self, relation):
        relation.delete(1)
        assert len(relation) == 2
        assert relation.window(Rect(0, 0, 100, 100)) == [0, 2] or \
            sorted(relation.window(Rect(0, 0, 100, 100))) == [0, 2]
        validate_rtree(relation.tree)

    def test_delete_missing(self, relation):
        with pytest.raises(KeyError):
            relation.delete(99)

    def test_delete_missing_is_catalog_error_without_epoch_bump(
            self, relation):
        from repro.errors import CatalogError
        epoch = relation.epoch
        with pytest.raises(CatalogError):
            relation.delete(99)
        # A failed delete changes nothing, so caches keyed on the
        # epoch must stay valid.
        assert relation.epoch == epoch
        assert len(relation) == 3

    def test_delete_then_reinsert_same_oid(self, relation):
        relation.delete(1)
        oid = relation.insert(Rect(60, 60, 61, 61), oid=1)
        assert oid == 1
        assert relation.get(1) == Rect(60, 60, 61, 61)
        assert sorted(relation) == [0, 1, 2]
        assert sorted(relation.window(Rect(0, 0, 100, 100))) == [0, 1, 2]
        validate_rtree(relation.tree)

    def test_mutations_bump_epoch(self, relation):
        epoch = relation.epoch
        oid = relation.insert(Rect(70, 70, 71, 71))
        assert relation.epoch == epoch + 1
        relation.delete(oid)
        assert relation.epoch == epoch + 2

    def test_invalid_names(self):
        for bad in ("", "a/b", ".hidden"):
            with pytest.raises(ValueError):
                SpatialRelation(bad)

    def test_index_and_table_stay_in_sync(self):
        import random
        rng = random.Random(7)
        rel = SpatialRelation("random", page_size=256)
        live = set()
        for _ in range(600):
            if live and rng.random() < 0.4:
                victim = rng.choice(sorted(live))
                rel.delete(victim)
                live.discard(victim)
            else:
                x, y = rng.random() * 100, rng.random() * 100
                oid = rel.insert(Rect(x, y, x + 1, y + 1))
                live.add(oid)
        assert set(rel) == live
        validate_rtree(rel.tree)
        assert sorted(rel.window(Rect(0, 0, 100, 100))) == sorted(live)


class TestQueries:
    def test_window_mbr(self, relation):
        assert relation.window(Rect(0, 0, 15, 15)) == [0]
        assert sorted(relation.window(Rect(0, 0, 100, 100))) == [0, 1, 2]

    def test_window_exact_refines(self):
        rel = SpatialRelation("lines")
        # MBR overlaps the window but the diagonal line misses it.
        rel.insert(Polyline([(0, 0), (10, 10)]))
        window = Rect(6, 0, 10, 4)    # below the diagonal
        assert rel.window(window) == [0]
        assert rel.window(window, exact=True) == []

    def test_window_exact_keeps_rect_objects(self, relation):
        window = Rect(5, 5, 12, 12)
        assert relation.window(window, exact=True) == [0]

    def test_window_exact_degenerate_falls_back(self, relation):
        window = Rect(5, 5, 5, 5)
        assert relation.window(window, exact=True) == \
            relation.window(window)

    def test_nearest(self, relation):
        got = relation.nearest(21, 21, k=2)
        assert [ref for ref, _ in got][0] == 1
        assert len(got) == 2

    def test_get(self, relation):
        assert relation.get(0) == Rect(0, 0, 10, 10)
        with pytest.raises(KeyError):
            relation.get(404)

    def test_records_and_mbr(self, relation):
        records = relation.records
        assert [oid for _, oid in records] == [0, 1, 2]
        assert relation.mbr() == Rect(0, 0, 50, 50)
