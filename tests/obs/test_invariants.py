"""Observability invariants demanded by the subsystem's contract.

* Tracing is purely additive: a traced run's counters and pairs equal
  the untraced run's exactly, for every algorithm, serial and parallel.
* With tracing disabled the instrumentation is a strict no-op: the
  shared ``NULL_OBS`` accumulates nothing and the wall-clock overhead
  on a small join stays marginal.
* Serial and parallel traces merge to identical aggregate *join*
  metrics (the multiset of node-pair sweeps is the same; buffer/IO
  metrics legitimately differ because workers re-descend ancestor
  chains).
* Histogram bucket boundaries are stable across runs, which is what
  makes cross-run and cross-worker merges meaningful.

SJ3 presorts nodes in place, so every comparison here runs on freshly
built trees rather than the shared session fixtures.
"""

import time

import pytest

from repro.core import JoinSpec, spatial_join
from repro.obs import DEFAULT_BOUNDS, NULL_OBS
from tests.conftest import build_rstar, make_rects

ALGORITHMS = ["sj1", "sj2", "sj3", "sj4", "sj5"]

LEFT = make_rects(500, seed=101)
RIGHT = make_rects(500, seed=202)


def fresh_trees():
    return build_rstar(LEFT), build_rstar(RIGHT)


def run(algorithm, trace=False, workers=1):
    tree_r, tree_s = fresh_trees()
    spec = JoinSpec(algorithm=algorithm, buffer_kb=64.0,
                    workers=workers, trace=trace)
    return spatial_join(tree_r, tree_s, spec=spec)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_traced_counters_equal_untraced(algorithm):
    base = run(algorithm)
    traced = run(algorithm, trace=True)
    assert traced.pairs == base.pairs
    assert traced.stats.to_dict() == base.stats.to_dict()
    assert traced.obs is not None and traced.obs.enabled


@pytest.mark.parametrize("workers", [2, 3])
def test_traced_parallel_counters_equal_untraced(workers):
    base = run("sj4", workers=workers)
    traced = run("sj4", trace=True, workers=workers)
    assert sorted(traced.pairs) == sorted(base.pairs)
    assert traced.stats.to_dict() == base.stats.to_dict()


def test_untraced_run_leaves_no_observability_residue():
    result = run("sj4")
    assert result.obs is None
    # Every untraced join shares NULL_OBS; it must never accumulate.
    assert NULL_OBS.tracer.spans == []
    assert NULL_OBS.tracer.aggregates == {}
    assert NULL_OBS.metrics.counters == {}
    assert NULL_OBS.metrics.gauges == {}
    assert NULL_OBS.metrics.histograms == {}


def test_tracing_a_run_leaves_later_runs_bit_identical():
    before = run("sj4")
    run("sj4", trace=True)
    after = run("sj4")
    assert after.pairs == before.pairs
    assert after.stats.to_dict() == before.stats.to_dict()


def test_traced_trace_carries_expected_signals():
    result = run("sj4", trace=True)
    tracer = result.obs.tracer
    assert tracer.span_total("join") > 0.0
    assert tracer.span_total("traversal") > 0.0
    assert tracer.aggregate_total("find_pairs") > 0.0
    metrics = result.obs.metrics
    assert metrics.counter("buffer.disk_reads") \
        == result.stats.io.disk_reads
    assert "sweep.run_length" in metrics.histograms


def test_serial_and_parallel_traces_merge_to_same_join_metrics():
    serial = run("sj4", trace=True)
    parallel = run("sj4", trace=True, workers=2)
    for name in ("join.fanout", "sweep.run_length"):
        assert parallel.obs.metrics.histograms[name] \
            == serial.obs.metrics.histograms[name], name
    level_counters = {
        name: value
        for name, value in serial.obs.metrics.counters.items()
        if name.startswith("join.node_pairs.")}
    assert level_counters
    for name, value in level_counters.items():
        assert parallel.obs.metrics.counter(name) == value, name


def test_histogram_bucket_boundaries_stable_across_runs():
    first = run("sj4", trace=True)
    second = run("sj4", trace=True)
    histograms = first.obs.metrics.histograms
    assert histograms
    for name, hist in histograms.items():
        clone = second.obs.metrics.histograms[name]
        assert hist.bounds == clone.bounds, name
        assert hist == clone, name
    assert histograms["sweep.run_length"].bounds == DEFAULT_BOUNDS


def test_disabled_tracer_wall_clock_overhead_is_marginal():
    # Robust timing: best of several runs each way; the disabled path
    # must not cost more than the enabled path plus noise (the enabled
    # path does strictly more work), which bounds the instrumentation's
    # overhead well under the 5% budget.
    def best(trace, repeats=5):
        fastest = float("inf")
        for _ in range(repeats):
            tree_r, tree_s = fresh_trees()
            spec = JoinSpec(algorithm="sj4", buffer_kb=64.0,
                            trace=trace)
            start = time.perf_counter()
            spatial_join(tree_r, tree_s, spec=spec)
            fastest = min(fastest, time.perf_counter() - start)
        return fastest

    disabled = best(trace=False)
    enabled = best(trace=True)
    assert disabled <= enabled * 1.05 + 1e-3
