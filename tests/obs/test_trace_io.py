"""Round-trip and schema tests for the JSONL trace file."""

import json

import pytest

from repro.core import JoinStatistics
from repro.obs import (Observability, TRACE_VERSION, read_trace,
                       validate_trace, write_trace)


def make_obs():
    obs = Observability()
    with obs.tracer.span("join", algorithm="SJ4"):
        with obs.tracer.span("traversal"):
            obs.tracer.add_duration("find_pairs", 0.002, count=3)
    obs.metrics.inc("buffer.disk_reads", 7)
    obs.metrics.set_gauge("g", 1.25)
    obs.metrics.observe("sweep.run_length", 12.0)
    return obs


def make_stats():
    stats = JoinStatistics(algorithm="SJ4", page_size=1024,
                           buffer_kb=64.0)
    stats.comparisons.join = 11
    stats.comparisons.sort = 3
    stats.io.disk_reads = 7
    stats.pairs_output = 5
    return stats


def test_write_then_read_round_trip(tmp_path):
    path = str(tmp_path / "t.jsonl")
    obs = make_obs()
    lines = write_trace(path, obs, stats=make_stats(),
                        meta={"workers": 2})
    assert lines >= 6
    document = read_trace(path)
    assert document.meta["version"] == TRACE_VERSION
    assert document.meta["workers"] == 2
    assert document.stats["io"]["disk_reads"] == 7
    assert [s["name"] for s in document.spans] == ["traversal", "join"]
    total_ms, count = document.aggregates["find_pairs"]
    assert count == 3 and total_ms == pytest.approx(2.0)
    assert document.counters["buffer.disk_reads"] == 7
    assert document.gauges["g"] == 1.25
    assert document.histograms["sweep.run_length"].count == 1


def test_stats_record_restores_join_statistics(tmp_path):
    path = str(tmp_path / "t.jsonl")
    write_trace(path, make_obs(), stats=make_stats())
    document = read_trace(path)
    restored = JoinStatistics.from_dict(document.stats)
    assert restored.disk_accesses == 7
    assert restored.comparisons.join == 11
    assert restored.pairs_output == 5


def test_first_line_must_be_meta():
    lines = [json.dumps({"type": "counter", "name": "a", "value": 1})]
    errors = validate_trace(lines)
    assert any("meta" in error for error in errors)


def test_unsupported_version_rejected():
    lines = [json.dumps({"type": "meta", "version": TRACE_VERSION + 1})]
    assert any("version" in error for error in validate_trace(lines))


def test_histogram_counts_length_checked():
    lines = [
        json.dumps({"type": "meta", "version": TRACE_VERSION}),
        json.dumps({"type": "histogram", "name": "h",
                    "bounds": [1.0, 2.0], "counts": [1, 2],
                    "sum": 3.0, "count": 3}),
    ]
    assert any("len(counts)" in error for error in validate_trace(lines))


def test_bool_is_not_an_int():
    lines = [
        json.dumps({"type": "meta", "version": TRACE_VERSION}),
        json.dumps({"type": "counter", "name": "c", "value": True}),
    ]
    assert any("mistyped" in error for error in validate_trace(lines))


def test_non_json_and_unknown_type_reported():
    lines = [
        json.dumps({"type": "meta", "version": TRACE_VERSION}),
        "{not json",
        json.dumps({"type": "mystery"}),
    ]
    errors = validate_trace(lines)
    assert any("not JSON" in error for error in errors)
    assert any("unknown type" in error for error in errors)


def test_read_trace_raises_on_invalid_file(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text("not json at all\n")
    with pytest.raises(ValueError):
        read_trace(str(path))


def test_valid_trace_file_passes_validation(tmp_path):
    path = str(tmp_path / "t.jsonl")
    write_trace(path, make_obs(), stats=make_stats())
    with open(path) as handle:
        assert validate_trace(handle.read().splitlines()) == []
