"""Unit tests for the span tracer."""

from repro.obs import SpanTracer
from repro.obs.tracer import _NULL_SPAN


class FakeClock:
    """Deterministic clock: every call advances by *step* seconds."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


def test_span_records_name_duration_and_depth():
    tracer = SpanTracer(clock=FakeClock())
    with tracer.span("join", algorithm="SJ4"):
        with tracer.span("traversal"):
            pass
    assert [s["name"] for s in tracer.spans] == ["traversal", "join"]
    traversal, join = tracer.spans
    assert traversal["depth"] == 1
    assert join["depth"] == 0
    assert join["attrs"] == {"algorithm": "SJ4"}
    assert traversal["dur_ms"] > 0
    assert join["dur_ms"] > traversal["dur_ms"]


def test_timestamps_are_relative_to_tracer_start():
    tracer = SpanTracer(clock=FakeClock(step=0.5))
    with tracer.span("a"):
        pass
    assert tracer.spans[0]["t0_ms"] >= 0.0


def test_aggregates_fold_instead_of_appending():
    tracer = SpanTracer()
    tracer.add_duration("find_pairs", 0.25)
    tracer.add_duration("find_pairs", 0.75, count=3)
    assert tracer.aggregates == {"find_pairs": [1.0, 4]}
    assert tracer.aggregate_total("find_pairs") == 1.0
    assert tracer.aggregate_total("missing") == 0.0


def test_disabled_tracer_is_a_strict_noop():
    tracer = SpanTracer(enabled=False)
    span = tracer.span("join")
    assert span is _NULL_SPAN
    with span:
        tracer.add_duration("find_pairs", 1.0)
    assert tracer.spans == []
    assert tracer.aggregates == {}
    # The shared null span never accumulates state either.
    assert SpanTracer(enabled=False).span("x") is span


def test_absorb_tags_worker_and_folds_aggregates():
    worker = SpanTracer(clock=FakeClock())
    with worker.span("batch", tasks=2):
        worker.add_duration("find_pairs", 0.5, count=2)
    coordinator = SpanTracer(clock=FakeClock())
    coordinator.absorb(worker.to_payload(), worker=1)
    record = coordinator.spans[0]
    assert record["name"] == "batch"
    assert record["worker"] == 1
    assert coordinator.aggregates["find_pairs"] == [0.5, 2]
    # The worker's own records are untouched by the absorb.
    assert "worker" not in worker.spans[0]


def test_span_total_filters_by_worker():
    worker = SpanTracer(clock=FakeClock())
    with worker.span("batch"):
        pass
    coordinator = SpanTracer(clock=FakeClock())
    with coordinator.span("batch"):
        pass
    coordinator.absorb(worker.to_payload(), worker=0)
    total = coordinator.span_total("batch")
    own = coordinator.span_total("batch", worker=None)
    theirs = coordinator.span_total("batch", worker=0)
    assert total == own + theirs
    assert own > 0 and theirs > 0
