"""Tests for the phase table and the cost-model drift report."""

import pytest

from repro.core import JoinStatistics
from repro.obs import (Observability, document_from, drift_report,
                       phase_rows, render_report)
from repro.obs.report import IO_AGGREGATE, render_phase_table


def traced_document():
    obs = Observability()
    with obs.tracer.span("join", algorithm="SJ1"):
        with obs.tracer.span("tree_open"):
            pass
        with obs.tracer.span("traversal"):
            obs.tracer.add_duration(IO_AGGREGATE, 0.004, count=8)
    obs.metrics.inc("buffer.disk_reads", 8)
    obs.metrics.observe("sweep.run_length", 4.0)
    stats = JoinStatistics(algorithm="SJ1", page_size=2048,
                           buffer_kb=128.0)
    stats.comparisons.join = 1000
    stats.io.disk_reads = 8
    return document_from(obs, stats=stats,
                         meta={"algorithm": "SJ1", "workers": 1})


def test_phase_rows_group_by_name_in_first_seen_order():
    document = traced_document()
    names = [name for name, _, _ in phase_rows(document)]
    assert names == ["tree_open", "traversal", "join"]
    for _, count, total_ms in phase_rows(document):
        assert count == 1 and total_ms >= 0.0


def test_drift_report_predicts_from_counters():
    document = traced_document()
    report = drift_report(document)
    assert report is not None
    # Predictions come straight from the paper's cost model.
    from repro.costmodel.model import PAPER_COST_MODEL
    stats = JoinStatistics.from_dict(document.stats)
    estimate = PAPER_COST_MODEL.estimate(stats)
    assert report.predicted_cpu_s == estimate.cpu_seconds
    assert report.predicted_io_s == estimate.io_seconds
    # Measured I/O is the disk-read aggregate; CPU is busy minus I/O,
    # never negative.
    assert report.measured_io_s == pytest.approx(0.004)
    assert report.measured_cpu_s >= 0.0
    assert 0.0 <= report.measured_io_fraction <= 1.0


def test_drift_report_needs_stats():
    obs = Observability()
    with obs.tracer.span("join"):
        pass
    assert drift_report(document_from(obs)) is None


def test_drift_speedup_handles_zero_measured_time():
    obs = Observability()
    stats = JoinStatistics()
    stats.io.disk_reads = 100
    report = drift_report(document_from(obs, stats=stats))
    assert report.measured_total_s == 0.0
    assert report.speedup("total") == float("inf")


def test_render_report_contains_every_section():
    text = render_report(traced_document())
    assert "algorithm=SJ1" in text
    assert "phase" in text and "traversal" in text
    assert "counters:" in text and "buffer.disk_reads" in text
    assert "histograms:" in text and "sweep.run_length" in text
    assert "cost-model drift" in text
    assert "predicted" in text and "measured" in text


def test_phase_table_marks_aggregates():
    table = render_phase_table(traced_document())
    assert IO_AGGREGATE + " *" in table
    assert "aggregate timer" in table
