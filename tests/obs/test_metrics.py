"""Unit tests for counters, gauges, and fixed-boundary histograms."""

import pytest

from repro.obs import DEFAULT_BOUNDS, Histogram, MetricsRegistry, PERCENT_BOUNDS


def test_counters_and_gauges():
    registry = MetricsRegistry()
    registry.inc("a")
    registry.inc("a", 4)
    registry.set_gauge("g", 1.5)
    registry.set_gauge("g", 2.5)
    assert registry.counter("a") == 5
    assert registry.counter("missing") == 0
    assert registry.gauges["g"] == 2.5


def test_histogram_buckets_and_sidecars():
    hist = Histogram("h", bounds=(1.0, 2.0, 4.0))
    for value in (0.5, 1.0, 3.0, 100.0):
        hist.observe(value)
    # bisect_left on inclusive upper bounds: 0.5 and 1.0 share the
    # first bucket, 3.0 lands in (2, 4], 100 overflows.
    assert hist.counts == [2, 0, 1, 1]
    assert hist.count == 4
    assert hist.total == 104.5
    assert hist.vmin == 0.5 and hist.vmax == 100.0
    assert hist.mean == pytest.approx(26.125)


def test_histogram_bounds_must_increase():
    with pytest.raises(ValueError):
        Histogram("h", bounds=(1.0, 1.0, 2.0))
    with pytest.raises(ValueError):
        Histogram("h", bounds=())


def test_histogram_merge_requires_equal_bounds():
    a = Histogram("h", bounds=(1.0, 2.0))
    b = Histogram("h", bounds=(1.0, 4.0))
    with pytest.raises(ValueError):
        a.merge(b)


def test_histogram_merge_folds_everything():
    a = Histogram("h", bounds=(1.0, 2.0))
    b = Histogram("h", bounds=(1.0, 2.0))
    a.observe(0.5)
    b.observe(1.5)
    b.observe(9.0)
    a.merge(b)
    assert a.counts == [1, 1, 1]
    assert a.count == 3
    assert a.vmin == 0.5 and a.vmax == 9.0


def test_histogram_dict_round_trip():
    hist = Histogram("h")
    for value in (1, 5, 300, 70000, 200000):
        hist.observe(value)
    clone = Histogram.from_dict("h", hist.to_dict())
    assert clone == hist
    assert clone.bounds == DEFAULT_BOUNDS


def test_default_bounds_are_stable_constants():
    # The merge discipline relies on every process using identical
    # boundaries; pin them so a drive-by edit fails loudly.
    assert DEFAULT_BOUNDS[0] == 1.0
    assert DEFAULT_BOUNDS[-1] == 65536.0
    assert len(DEFAULT_BOUNDS) == 17
    assert PERCENT_BOUNDS == tuple(float(p) for p in range(10, 101, 10))


def test_registry_observe_creates_then_reuses():
    registry = MetricsRegistry()
    registry.observe("h", 3.0)
    registry.observe("h", 5.0)
    assert registry.histograms["h"].count == 2


def test_disabled_registry_records_nothing():
    registry = MetricsRegistry(enabled=False)
    registry.inc("a")
    registry.set_gauge("g", 1.0)
    registry.observe("h", 1.0)
    assert registry.counters == {}
    assert registry.gauges == {}
    assert registry.histograms == {}


def test_absorb_merges_each_kind():
    a = MetricsRegistry()
    a.inc("c", 2)
    a.set_gauge("g", 1.0)
    a.observe("h", 1.0)
    b = MetricsRegistry()
    b.inc("c", 3)
    b.inc("other")
    b.set_gauge("g", 9.0)
    b.observe("h", 100.0)
    a.absorb(b.to_payload())
    assert a.counter("c") == 5
    assert a.counter("other") == 1
    assert a.gauges["g"] == 9.0          # last write wins
    assert a.histograms["h"].count == 2
    assert a.histograms["h"].vmax == 100.0


# ----------------------------------------------------------------------
# Percentile estimation
# ----------------------------------------------------------------------

def test_percentile_empty_histogram():
    hist = Histogram("h", bounds=(1.0, 2.0))
    assert hist.percentile(50.0) == 0.0
    assert hist.percentiles() == {"p50": 0.0, "p95": 0.0, "p99": 0.0}


def test_percentile_rejects_out_of_range():
    hist = Histogram("h", bounds=(1.0,))
    hist.observe(0.5)
    with pytest.raises(ValueError):
        hist.percentile(101.0)
    with pytest.raises(ValueError):
        hist.percentile(-1.0)


def test_percentile_interpolates_within_buckets():
    hist = Histogram("h", bounds=(10.0, 20.0, 40.0))
    for _ in range(100):
        hist.observe(15.0)          # all mass in the (10, 20] bucket
    # Rank interpolation inside the bucket, clamped to observed range.
    assert hist.percentile(50.0) == pytest.approx(15.0)
    assert 10.0 < hist.percentile(95.0) <= 20.0
    # Clamped to vmax — never past what was actually seen.
    assert hist.percentile(100.0) <= 15.0


def test_percentile_orders_across_buckets():
    hist = Histogram("h", bounds=tuple(float(b) for b in
                                       (1, 2, 4, 8, 16, 32)))
    for value in (0.5,) * 50 + (3.0,) * 40 + (30.0,) * 10:
        hist.observe(value)
    p50, p95, p99 = (hist.percentile(q) for q in (50.0, 95.0, 99.0))
    assert p50 <= p95 <= p99
    assert p50 <= 1.0               # half the mass is in bucket one
    assert p99 > 16.0               # the tail lives in (16, 32]


def test_percentile_overflow_bucket_resolves_to_vmax():
    hist = Histogram("h", bounds=(1.0,))
    for value in (5.0, 500.0):
        hist.observe(value)          # both overflow the last bound
    # The unbounded bucket interpolates toward the recorded max, never
    # toward infinity; the top rank is exactly the max.
    assert hist.percentile(100.0) == 500.0
    assert 5.0 <= hist.percentile(99.0) <= 500.0
    assert hist.percentile(1.0) >= hist.vmin


def test_percentiles_after_merge():
    a = Histogram("h", bounds=(1.0, 10.0, 100.0))
    b = Histogram("h", bounds=(1.0, 10.0, 100.0))
    for _ in range(99):
        a.observe(5.0)
    b.observe(90.0)
    a.merge(b)
    assert a.percentile(50.0) <= 10.0
    assert a.percentile(99.5) > 10.0
