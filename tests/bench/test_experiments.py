"""Smoke tests: every exhibit function runs end to end at tiny scale.

These exercise experiments.py / ablations.py themselves (grid assembly,
formatting, data dictionaries); the scientific assertions live in
``benchmarks/``.
"""

import pytest

from repro.bench import ABLATIONS, EXHIBITS

TINY = 0.004


@pytest.fixture(autouse=True)
def hermetic(monkeypatch):
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    monkeypatch.setenv("REPRO_SCALE", str(TINY))
    # The runner keeps per-process tree caches keyed by scale, so the
    # tiny scale never collides with other tests' trees.


@pytest.mark.parametrize("name", sorted(EXHIBITS))
def test_exhibit_renders(name):
    if name == "table7":
        pytest.skip("table7 needs a height difference; covered below")
    report = EXHIBITS[name](scale=TINY)
    text = report.render()
    assert report.exhibit.lower().replace(" ", "") == name
    assert report.rows
    assert report.data
    assert report.exhibit in text


def test_table7_probes_page_size():
    # At tiny scale test C's trees may share heights for the paper page
    # sizes; accept either a valid report or the documented error.
    try:
        report = EXHIBITS["table7"](scale=TINY)
    except RuntimeError as exc:
        assert "height" in str(exc)
    else:
        assert report.rows


@pytest.mark.parametrize("name", sorted(ABLATIONS))
def test_ablation_renders(name):
    if name == "ablation-sweep-crossover":
        # Purely synthetic; takes no scale parameter.
        report = ABLATIONS[name](sizes=(8, 16, 32))
    else:
        report = ABLATIONS[name](scale=TINY)
    assert report.rows
    assert report.data
    assert report.render()


def test_bench_cli_main(capsys):
    from repro.bench.__main__ import main
    assert main(["ablation-sweep-crossover"]) == 0
    out = capsys.readouterr().out
    assert "sweep" in out.lower()
    assert "[ablation-sweep-crossover" in out
