"""The regression gate: synthetic baselines vs fresh rows.

No benchmarks run here — rows are fabricated so every verdict path
(ok, improved, regressed, counter drift, env mismatch, missing, new)
and the machine-factor normalization are exercised deterministically.
"""

import json

import pytest

from repro.bench.gate import (WALL_SLACK_MS, Comparison, compare_rows,
                              comparison_to_json, keep_min_wall,
                              merge_into_baseline, rank_components,
                              rank_to_json, render_delta_table,
                              render_rank_table)

ENV = {"python": "3.11.7", "platform": "linux", "machine": "x86_64",
       "backend": "numpy", "git_sha": "abc1234"}


def row(bench, wall_ms, params=None, counters=None, env=ENV):
    made = {"schema": 2, "created": "2026-08-08T00:00:00Z",
            "bench": bench, "params": params or {},
            "counters": counters or {}, "wall_ms": wall_ms}
    if env is not None:
        made["env"] = env
    return made


def clone(rows, **wall_overrides):
    fresh = [json.loads(json.dumps(r)) for r in rows]
    for r in fresh:
        if r["bench"] in wall_overrides:
            r["wall_ms"] = wall_overrides[r["bench"]]
    return fresh


BASELINE = [row("a", 100.0), row("b", 100.0), row("c", 100.0),
            row("d", 100.0), row("e", 100.0)]


def test_identical_rows_pass():
    comparison = compare_rows(BASELINE, clone(BASELINE))
    assert comparison.ok
    assert all(d.status == "ok" for d in comparison.deltas)
    assert comparison.machine_factor == pytest.approx(1.0)


def test_injected_regression_fails_the_gate():
    """+50% wall on one row exits the gate nonzero territory."""
    fresh = clone(BASELINE, c=150.0)
    comparison = compare_rows(BASELINE, fresh, tolerance=0.25)
    assert not comparison.ok
    failed = comparison.failures
    assert [d.bench for d in failed] == ["c"]
    assert failed[0].status == "regressed"
    assert failed[0].ratio == pytest.approx(1.5)


def test_improvement_is_not_a_failure():
    fresh = clone(BASELINE, c=50.0)
    comparison = compare_rows(BASELINE, fresh, tolerance=0.25)
    assert comparison.ok
    improved = [d for d in comparison.deltas if d.status == "improved"]
    assert [d.bench for d in improved] == ["c"]


def test_machine_factor_normalizes_uniform_slowdown():
    """Every row 2x slower = slower machine, not a regression."""
    fresh = clone(BASELINE, **{b: 200.0 for b in "abcde"})
    comparison = compare_rows(BASELINE, fresh, tolerance=0.25)
    assert comparison.machine_factor == pytest.approx(2.0)
    assert comparison.ok


def test_single_regression_survives_normalization():
    """One row +100% on an otherwise-even run still regresses."""
    fresh = clone(BASELINE, c=200.0)
    comparison = compare_rows(BASELINE, fresh, tolerance=0.25)
    assert [d.bench for d in comparison.failures] == ["c"]


def test_flat_row_on_a_faster_machine_is_not_a_regression():
    """Everything else sped up 25%; c's own time is unchanged.

    Normalization alone would read c at 1.33x; the raw-ratio
    requirement keeps a row that did not get slower from being
    flagged just because the rest of the suite did get faster.
    """
    fresh = clone(BASELINE, a=75.0, b=75.0, d=75.0, e=75.0)
    comparison = compare_rows(BASELINE, fresh, tolerance=0.25)
    assert comparison.machine_factor == pytest.approx(0.75)
    assert comparison.ok, [d.detail for d in comparison.failures]


def test_regression_on_a_faster_machine_still_fails():
    """c got 60% slower raw while the machine got 25% faster."""
    fresh = clone(BASELINE, a=75.0, b=75.0, d=75.0, e=75.0, c=160.0)
    comparison = compare_rows(BASELINE, fresh, tolerance=0.25)
    assert [d.bench for d in comparison.failures] == ["c"]


def test_small_absolute_deltas_never_regress():
    baseline = [row(b, 1.0) for b in "abcde"]
    fresh = clone(baseline, c=1.0 + WALL_SLACK_MS * 0.9)
    comparison = compare_rows(baseline, fresh, tolerance=0.25)
    assert comparison.ok


def test_deterministic_counter_drift_fails():
    """Registered deterministic counters are compared exactly."""
    counters = {"pairs": 91, "comparisons": 1000, "disk_accesses": 57}
    baseline = [row("table2_sj1", 100.0, counters=counters)]
    fresh = clone(baseline)
    fresh[0]["counters"]["pairs"] = 90
    comparison = compare_rows(baseline, fresh)
    assert [d.status for d in comparison.deltas] == ["counter-drift"]
    assert "pairs 91 -> 90" in comparison.deltas[0].detail


def test_incomparable_env_is_refused():
    other = dict(ENV, backend="stdlib")
    fresh = clone(BASELINE)
    fresh[2]["env"] = other
    comparison = compare_rows(BASELINE, fresh)
    mismatched = [d for d in comparison.deltas
                  if d.status == "env-mismatch"]
    assert [d.bench for d in mismatched] == ["c"]
    assert not comparison.ok
    assert compare_rows(BASELINE, fresh, ignore_env=True).ok


def test_missing_env_is_treated_comparable():
    fresh = clone(BASELINE)
    for r in fresh:
        del r["env"]
    assert compare_rows(BASELINE, fresh).ok


def test_missing_and_new_rows():
    fresh = clone(BASELINE)[:-1]
    fresh.append(row("f", 100.0))
    comparison = compare_rows(BASELINE, fresh,
                              benches=list("abcdef"))
    by_status = {d.bench: d.status for d in comparison.deltas}
    assert by_status["e"] == "missing"
    assert by_status["f"] == "new"
    assert [d.bench for d in comparison.failures] == ["e"]


def test_scope_limits_comparison_to_fresh_benches():
    """A smoke run refreshing a subset must not flag the rest of the
    baseline matrix as missing."""
    fresh = clone(BASELINE)[:2]
    comparison = compare_rows(BASELINE, fresh)
    assert sorted(d.bench for d in comparison.deltas) == ["a", "b"]
    assert comparison.ok


def test_params_key_matching_is_canonical():
    baseline = [row("a", 100.0, params={"buffer_kb": 128})]
    fresh = [row("a", 110.0, params={"buffer_kb": 128.0})]
    comparison = compare_rows(baseline, fresh)
    assert len(comparison.deltas) == 1
    assert comparison.deltas[0].status == "ok"


def test_delta_table_renders_failures_first():
    fresh = clone(BASELINE, c=200.0)
    comparison = compare_rows(BASELINE, fresh, tolerance=0.25)
    table = render_delta_table(comparison)
    lines = table.splitlines()
    assert lines[2].startswith("c")
    assert "regressed" in lines[2]
    assert "machine factor" in lines[-1]


def test_comparison_to_json_round_trips():
    fresh = clone(BASELINE, c=200.0)
    comparison = compare_rows(BASELINE, fresh, tolerance=0.25)
    payload = comparison_to_json(comparison)
    assert payload["failures"] == 1
    assert json.loads(json.dumps(payload)) == payload


def test_merge_into_baseline_upserts(tmp_path):
    base_path = tmp_path / "base.json"
    fresh_path = tmp_path / "fresh.json"
    base_path.write_text(json.dumps(BASELINE))
    fresh_path.write_text(json.dumps(
        clone(BASELINE, a=55.0)[:1] + [row("z", 9.0)]))
    merged_count = merge_into_baseline(str(fresh_path), str(base_path))
    assert merged_count == 2
    merged = json.loads(base_path.read_text())
    assert len(merged) == 6
    by_bench = {r["bench"]: r for r in merged}
    assert by_bench["a"]["wall_ms"] == 55.0
    assert by_bench["z"]["wall_ms"] == 9.0


def test_keep_min_wall_prefers_the_faster_measurement(tmp_path):
    fresh_path = tmp_path / "fresh.json"
    before = clone(BASELINE, a=80.0, b=120.0)
    # The retry re-measured a slower (noise) and b faster (real).
    fresh_path.write_text(json.dumps(clone(BASELINE, a=95.0, b=90.0)))
    lowered = keep_min_wall(str(fresh_path), before, ["a", "b"])
    assert lowered == 1
    by_bench = {r["bench"]: r for r in json.loads(fresh_path.read_text())}
    assert by_bench["a"]["wall_ms"] == 80.0   # earlier run was faster
    assert by_bench["b"]["wall_ms"] == 90.0   # retry was faster


def test_keep_min_wall_touches_only_retried_benches(tmp_path):
    fresh_path = tmp_path / "fresh.json"
    before = clone(BASELINE, a=1.0, c=1.0)
    fresh_path.write_text(json.dumps(clone(BASELINE)))
    assert keep_min_wall(str(fresh_path), before, ["a"]) == 1
    by_bench = {r["bench"]: r for r in json.loads(fresh_path.read_text())}
    assert by_bench["a"]["wall_ms"] == 1.0
    assert by_bench["c"]["wall_ms"] == 100.0  # c was not retried


# ----------------------------------------------------------------------
# rank
# ----------------------------------------------------------------------

def _contrast_rows():
    return [
        row("table3_restriction", 10.0,
            params={"algorithm": "sj2", "buffer_kb": 128},
            counters={"restrict_ms": 5.0, "norestrict_ms": 20.0}),
        row("wal_overhead", 10.0, params={"n": 2000},
            counters={"batch_rps": 4000.0, "always_rps": 2000.0}),
    ]


def test_rank_components_computes_impacts():
    impacts, missing = rank_components(_contrast_rows())
    by_key = {i.component.key: i for i in impacts}
    # time kind: off / on — restriction made the join 4x faster.
    assert by_key["restriction"].impact == pytest.approx(4.0)
    # rate kind: on / off — group commit doubled throughput.
    assert by_key["wal_sync"].impact == pytest.approx(2.0)
    assert impacts[0].component.key == "restriction"   # sorted desc
    missing_keys = {c.key for c in missing}
    assert "pinning" in missing_keys       # no row for it here


def test_rank_over_committed_baseline_covers_required_components():
    """The acceptance bar: the committed BENCH_join.json must attribute
    impact to at least these components."""
    import os
    path = os.path.join(os.path.dirname(__file__), "..", "..",
                        "BENCH_join.json")
    impacts, _ = rank_components(json.load(open(path)))
    covered = {i.component.key for i in impacts}
    assert {"restriction", "sweep_layout", "presort", "pinning",
            "planner", "wal_sync"} <= covered


def test_rank_rendering_and_json():
    impacts, missing = rank_components(_contrast_rows())
    table = render_rank_table(impacts, missing)
    assert "restriction" in table and "req/s" in table
    assert "refresh the baseline" in table      # missing components
    payload = rank_to_json(impacts, missing)
    assert payload["components"][0]["component"] == "restriction"
    assert "pinning" in payload["missing"]


def test_comparison_failures_property():
    comparison = Comparison(deltas=[], machine_factor=1.0,
                            tolerance=0.25)
    assert comparison.ok and comparison.failures == []
