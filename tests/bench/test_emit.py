"""Tests for the machine-readable benchmark emitter."""

import importlib.util
import json
import os

import pytest

_EMIT_PATH = os.path.join(os.path.dirname(__file__), "..", "..",
                          "benchmarks", "emit.py")


@pytest.fixture
def emit_module(tmp_path, monkeypatch):
    spec = importlib.util.spec_from_file_location("bench_emit",
                                                  _EMIT_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    monkeypatch.setenv("REPRO_BENCH_OUT", str(tmp_path / "out.json"))
    return module


def test_emit_writes_a_row(emit_module):
    emit_module.emit("table2", {"algorithm": "sj1"},
                     {"disk_accesses": 10}, 12.3456)
    rows = json.load(open(emit_module.bench_path()))
    assert len(rows) == 1
    created = rows[0].pop("created")
    assert created.endswith("Z") and len(created) == 20  # ISO-8601 UTC
    env = rows[0].pop("env")
    assert env["platform"] and env["backend"] in ("numpy", "stdlib")
    assert rows[0] == {"schema": emit_module.SCHEMA_VERSION,
                       "bench": "table2",
                       "params": {"algorithm": "sj1"},
                       "counters": {"disk_accesses": 10},
                       "wall_ms": 12.346}


def test_emit_upserts_on_bench_and_params(emit_module):
    emit_module.emit("table2", {"algorithm": "sj1"}, {}, 1.0)
    emit_module.emit("table2", {"algorithm": "sj1"}, {}, 2.0)
    emit_module.emit("table2", {"algorithm": "sj4"}, {}, 3.0)
    emit_module.emit("table6", {}, {}, 4.0)
    rows = json.load(open(emit_module.bench_path()))
    assert len(rows) == 3
    sj1 = [row for row in rows if row["params"] == {"algorithm": "sj1"}]
    assert sj1[0]["wall_ms"] == 2.0            # replaced, not appended
    assert [row["bench"] for row in rows] == sorted(
        row["bench"] for row in rows)


def test_upsert_key_is_stable_across_param_spelling(emit_module):
    """128 vs 128.0 and key order must collide onto one row."""
    emit_module.emit("t", {"buffer_kb": 128.0, "algorithm": "sj2"},
                     {}, 1.0)
    emit_module.emit("t", {"algorithm": "sj2", "buffer_kb": 128},
                     {}, 2.0)
    rows = json.load(open(emit_module.bench_path()))
    assert len(rows) == 1
    assert rows[0]["wall_ms"] == 2.0
    assert rows[0]["params"] == {"algorithm": "sj2", "buffer_kb": 128}


def test_canonical_params_normalizes_recursively(emit_module):
    canonical = emit_module.canonical_params(
        {"a": 2.0, "b": True, "c": [1.5, 3.0], "d": {"e": 0.0}})
    assert canonical == {"a": 2, "b": True, "c": [1.5, 3], "d": {"e": 0}}
    assert isinstance(canonical["a"], int)
    assert canonical["b"] is True              # bools are not ints here


def test_committed_rows_carry_schema_created_and_env():
    path = os.path.join(os.path.dirname(_EMIT_PATH), "..",
                        "BENCH_join.json")
    rows = json.load(open(path))
    assert rows, "committed benchmark snapshot must not be empty"
    for row in rows:
        assert row["schema"] == 2
        assert row["created"].endswith("Z")
        assert row["env"]["platform"]
        assert row["env"]["backend"] in ("numpy", "stdlib")


def test_load_rows_rejects_malformed_rows(emit_module, tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps([{"bench": "x", "params": {},
                                 "counters": {}, "wall_ms": 1.0}]))
    with pytest.raises(ValueError, match="missing"):
        emit_module.load_rows(str(path))
    path.write_text(json.dumps({"not": "a list"}))
    with pytest.raises(ValueError, match="array"):
        emit_module.load_rows(str(path))


def test_emit_refuses_to_clobber_malformed_rows(emit_module):
    """Parseable-but-invalid rows raise instead of being rewritten."""
    with open(emit_module.bench_path(), "w") as handle:
        json.dump([{"bench": "x", "wall_ms": 1.0}], handle)
    with pytest.raises(ValueError):
        emit_module.emit("table2", {}, {}, 1.0)


def test_emit_survives_a_corrupt_file(emit_module):
    with open(emit_module.bench_path(), "w") as handle:
        handle.write("not json")
    emit_module.emit("table2", {}, {}, 1.0)
    assert len(json.load(open(emit_module.bench_path()))) == 1


def test_counters_of_join_result(emit_module):
    from repro.core import JoinResult, JoinStatistics
    stats = JoinStatistics()
    stats.comparisons.join = 5
    stats.io.disk_reads = 3
    stats.pairs_output = 2
    counters = emit_module.counters_of(JoinResult([(1, 2)], stats))
    assert counters == {"disk_accesses": 3, "comparisons": 5,
                        "pairs": 2}


def test_counters_of_dict_passthrough(emit_module):
    counters = emit_module.counters_of(
        {"restrict_ms": 1.5, "pairs": 10, "label": "sj2", "flag": True})
    assert counters == {"restrict_ms": 1.5, "pairs": 10}


def test_counters_of_tree_and_scalar(emit_module):
    from tests.conftest import build_rstar, make_rects
    tree = build_rstar(make_rects(50, seed=7))
    assert emit_module.counters_of(tree) == {"height": tree.height}
    assert emit_module.counters_of(2.5) == {"value": 2.5}
    assert emit_module.counters_of(object()) == {}


def test_timed_runs_once_and_emits(emit_module):
    calls = []

    class FakeBenchmark:
        def pedantic(self, fn, rounds, iterations):
            return fn()

    result = emit_module.timed(FakeBenchmark(),
                               lambda: calls.append(1) or 41 + 1,
                               "sample", knob=7)
    assert result == 42
    assert calls == [1]
    rows = json.load(open(emit_module.bench_path()))
    assert rows[0]["bench"] == "sample"
    assert rows[0]["params"] == {"knob": 7}
    assert rows[0]["counters"] == {"value": 42}
    assert rows[0]["wall_ms"] >= 0.0
    assert rows[0]["env"] == emit_module.environment_fingerprint()
