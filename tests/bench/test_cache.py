"""Unit tests for the benchmark cache layer."""

import os
import pickle

import pytest

from repro.bench.cache import CACHE_VERSION, cache_dir, cached


@pytest.fixture
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    return tmp_path


def test_cache_dir_honours_env(isolated_cache):
    assert cache_dir() == isolated_cache


def test_cache_disabled(monkeypatch):
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    assert cache_dir() is None
    calls = []
    value = cached("kind", "key", lambda: calls.append(1) or 42)
    assert value == 42
    # Build runs every time when disabled.
    cached("kind", "key", lambda: calls.append(1) or 42)
    assert len(calls) == 2


def test_cache_disabled_zero_means_enabled(isolated_cache, monkeypatch):
    monkeypatch.setenv("REPRO_NO_CACHE", "0")
    assert cache_dir() == isolated_cache


def test_build_once_then_hit(isolated_cache):
    calls = []

    def build():
        calls.append(1)
        return {"answer": 42}

    first = cached("tree", "alpha", build)
    second = cached("tree", "alpha", build)
    assert first == second == {"answer": 42}
    assert len(calls) == 1


def test_different_kinds_and_keys_are_separate(isolated_cache):
    assert cached("a", "k", lambda: 1) == 1
    assert cached("b", "k", lambda: 2) == 2
    assert cached("a", "k2", lambda: 3) == 3
    assert cached("a", "k", lambda: 99) == 1


def test_key_sanitization(isolated_cache):
    value = cached("join", "A/0.125 8.0", lambda: "ok")
    assert value == "ok"
    files = os.listdir(isolated_cache)
    assert all("/" not in name and " " not in name for name in files)


def test_version_in_filename(isolated_cache):
    cached("tree", "vtest", lambda: 1)
    files = os.listdir(isolated_cache)
    assert any(f.startswith(f"v{CACHE_VERSION}-tree-") for f in files)


def test_corrupt_entry_rebuilt(isolated_cache):
    cached("tree", "c", lambda: [1, 2, 3])
    (victim,) = [f for f in os.listdir(isolated_cache)
                 if "-tree-c" in f]
    path = isolated_cache / victim
    path.write_bytes(b"not a pickle")
    rebuilt = cached("tree", "c", lambda: [4, 5, 6])
    assert rebuilt == [4, 5, 6]
    # And the repaired entry now hits.
    assert cached("tree", "c", lambda: "never") == [4, 5, 6]


def test_values_roundtrip_complex_objects(isolated_cache):
    from repro.bench.runner import JoinOutcome
    outcome = JoinOutcome(
        algorithm="SJ4", test="A", page_size=4096, buffer_kb=8.0,
        height_policy="b", sort_mode="maintained", use_path_buffer=True,
        variant="rstar", disk_accesses=10, lru_hits=1, path_hits=2,
        cmp_join=100, cmp_sort=5, pairs=7, node_pairs=3)
    stored = cached("join", "outcome", lambda: outcome)
    again = cached("join", "outcome", lambda: None)
    assert again == stored == outcome
    assert again.comparisons == 105
