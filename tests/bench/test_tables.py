"""Unit tests for the report rendering."""

from repro.bench import ExperimentReport, format_table
from repro.bench.tables import fmt_float, fmt_int


def test_format_table_alignment():
    out = format_table(["name", "count"], [["alpha", "1,234"],
                                           ["b", "56"]])
    lines = out.splitlines()
    assert lines[0].startswith("name")
    assert "-----" in lines[1]
    # Numeric cells are right-aligned within their column.
    assert lines[2].endswith("1,234")
    assert lines[3].endswith("   56")


def test_format_table_ragged_rows_padded():
    out = format_table(["a", "b", "c"], [["1"], ["2", "3"]])
    assert len(out.splitlines()) == 4


def test_fmt_helpers():
    assert fmt_int(1234567) == "1,234,567"
    assert fmt_float(3.14159) == "3.14"
    assert fmt_float(2.0, digits=1) == "2.0"


def test_report_render():
    report = ExperimentReport(
        exhibit="Table 9", title="demo", headers=["x"], rows=[["1"]],
        notes=["a note"])
    text = report.render()
    assert "Table 9: demo" in text
    assert "a note" in text
    assert str(report) == text


def test_report_renders_charts():
    from repro.bench.tables import ascii_bar_chart
    report = ExperimentReport(
        exhibit="Figure 9", title="demo", headers=["x"], rows=[["1"]])
    report.charts.append(ascii_bar_chart("speedups:", ["a", "b"],
                                         [1.0, 2.0], unit="x"))
    text = report.render()
    assert "speedups:" in text
    assert "2.00x" in text


class TestAsciiBarChart:
    def test_bars_proportional(self):
        from repro.bench.tables import ascii_bar_chart
        chart = ascii_bar_chart("t:", ["small", "big"], [1.0, 4.0],
                                width=40)
        lines = chart.splitlines()
        small_bar = lines[1].count("#")
        big_bar = lines[2].count("#")
        assert big_bar == 40
        assert small_bar == 10

    def test_zero_value_has_no_bar(self):
        from repro.bench.tables import ascii_bar_chart
        chart = ascii_bar_chart("t:", ["zero", "one"], [0.0, 1.0])
        assert "#" not in chart.splitlines()[1]

    def test_all_zero_values(self):
        from repro.bench.tables import ascii_bar_chart
        chart = ascii_bar_chart("t:", ["a"], [0.0])
        assert "0.00" in chart

    def test_empty_values(self):
        from repro.bench.tables import ascii_bar_chart
        assert ascii_bar_chart("only title", [], []) == "only title"

    def test_mismatched_lengths_rejected(self):
        import pytest
        from repro.bench.tables import ascii_bar_chart
        with pytest.raises(ValueError):
            ascii_bar_chart("t:", ["a"], [1.0, 2.0])
