"""Integration tests for the experiment runner at tiny scale.

The runner is exercised with caching disabled so the tests are
hermetic; TINY keeps tree building fast.
"""

import pytest

from repro.bench import build_tree, optimum_accesses, presort_cost, run_join
from repro.bench import test_properties as tree_census
from repro.bench import test_trees as load_test_trees
from tests.conftest import make_rects

TINY = 0.004


@pytest.fixture(autouse=True)
def no_cache(monkeypatch):
    monkeypatch.setenv("REPRO_NO_CACHE", "1")


def test_build_tree_variants():
    records = make_rects(300, seed=1)
    for variant in ("rstar", "guttman-quadratic", "guttman-linear",
                    "str", "hilbert"):
        tree = build_tree(records, 1024, variant)
        assert len(tree) == 300
    with pytest.raises(ValueError):
        build_tree(records, 1024, "btree")


def test_test_trees_sorted_and_consistent():
    tree_r, tree_s = load_test_trees("A", 1024, scale=TINY)
    assert len(tree_r) > 0 and len(tree_s) > 0
    for node in tree_r.iter_nodes():
        assert node.sorted_by_xl


def test_run_join_outcome_fields():
    outcome = run_join("A", 1024, 8.0, "sj4", scale=TINY)
    assert outcome.algorithm == "SJ4"
    assert outcome.disk_accesses > 0
    assert outcome.cmp_join > 0
    assert outcome.pairs >= 0
    assert outcome.comparisons == outcome.cmp_join + outcome.cmp_sort


def test_run_join_same_result_all_algorithms():
    pair_counts = {
        algo: run_join("A", 1024, 8.0, algo, scale=TINY).pairs
        for algo in ("sj1", "sj2", "sj3", "sj4", "sj5")
    }
    assert len(set(pair_counts.values())) == 1


def test_optimum_accesses_is_total_pages():
    props_r, props_s = tree_census("A", 1024, scale=TINY)
    assert optimum_accesses("A", 1024, scale=TINY) == \
        props_r.total_pages + props_s.total_pages


def test_presort_cost_positive():
    assert presort_cost("A", 1024, scale=TINY) > 0


def test_on_read_join_uses_unsorted_trees():
    outcome = run_join("A", 1024, 8.0, "sj4", scale=TINY,
                       sort_mode="on_read")
    assert outcome.cmp_sort > 0
