"""The experiment registry: completeness and selection semantics."""

import os

import pytest

from repro.bench.registry import (BY_BENCH, BY_MODULE, COMPONENTS,
                                  EXPERIMENTS, benchmarks_dir,
                                  experiments_for)

_BENCH_DIR = os.path.join(os.path.dirname(__file__), "..", "..",
                          "benchmarks")


def test_every_bench_module_is_registered():
    """Adding a ``benchmarks/bench_*.py`` without declaring it in the
    registry is a CI failure — the matrix must stay exhaustive."""
    modules = sorted(name for name in os.listdir(_BENCH_DIR)
                     if name.startswith("bench_")
                     and name.endswith(".py"))
    assert modules, "benchmarks/ directory must hold bench modules"
    unregistered = [m for m in modules if m not in BY_MODULE]
    assert not unregistered, (
        f"bench module(s) missing from repro.bench.registry: "
        f"{unregistered}")


def test_every_registered_module_exists():
    for experiment in EXPERIMENTS:
        path = os.path.join(_BENCH_DIR, experiment.module)
        assert os.path.exists(path), experiment.module


def test_bench_names_are_unique():
    assert len(BY_BENCH) == len(EXPERIMENTS)
    assert len(BY_MODULE) == len(EXPERIMENTS)


def test_smoke_tier_is_a_nonempty_subset():
    smoke = experiments_for("smoke")
    assert smoke
    assert len(smoke) < len(EXPERIMENTS)
    assert all(e.tier == "smoke" for e in smoke)


def test_full_tier_selects_everything():
    assert experiments_for(None) == EXPERIMENTS
    assert experiments_for("full") == EXPERIMENTS


def test_unknown_tier_and_bench_raise():
    with pytest.raises(ValueError, match="unknown tier"):
        experiments_for("nightly")
    with pytest.raises(ValueError, match="unknown experiment"):
        experiments_for(None, ("no_such_bench",))


def test_only_selection_preserves_registry_order():
    chosen = experiments_for(None, ("table3_restriction", "table2_sj1"))
    assert [e.bench for e in chosen] == ["table2_sj1",
                                        "table3_restriction"]


def test_component_contrasts_reference_registered_benches():
    keys = set()
    for component in COMPONENTS:
        assert component.bench in BY_BENCH, component.key
        assert component.kind in ("time", "rate")
        assert component.on != component.off
        keys.add(component.key)
    # The ranked report covers at least the paper's optimization axes.
    assert {"restriction", "sweep_layout", "presort", "pinning",
            "planner", "wal_sync"} <= keys


def test_tolerances_are_sane():
    for experiment in EXPERIMENTS:
        assert 0.0 < experiment.tolerance <= 1.0, experiment.bench


def test_benchmarks_dir_resolves():
    assert os.path.isdir(benchmarks_dir())
    assert os.path.samefile(benchmarks_dir(start=os.path.join(
        os.path.dirname(__file__), "..", "..")), _BENCH_DIR)
