"""Model-based test: R*-tree against a dictionary under random
insert/delete/query interleavings."""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (RuleBasedStateMachine, invariant,
                                 precondition, rule)

from repro.geometry import Rect
from repro.rtree import RStarTree, RTreeParams, validate_rtree

coords = st.floats(min_value=0.0, max_value=64.0,
                   allow_nan=False, allow_infinity=False)


@st.composite
def rect_strategy(draw):
    x = draw(coords)
    y = draw(coords)
    w = draw(st.floats(min_value=0.0, max_value=8.0))
    h = draw(st.floats(min_value=0.0, max_value=8.0))
    return Rect(x, y, x + w, y + h)


class RTreeMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        # M=4 so splits/reinsertions/condensations trigger quickly.
        self.tree = RStarTree(RTreeParams.from_page_size(80))
        self.model = {}
        self.next_id = 0

    @rule(rect=rect_strategy())
    def insert(self, rect):
        oid = self.next_id
        self.next_id += 1
        self.tree.insert(rect, oid)
        self.model[oid] = rect

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def delete_existing(self, data):
        oid = data.draw(st.sampled_from(sorted(self.model)))
        rect = self.model.pop(oid)
        assert self.tree.delete(rect, oid)

    @rule(rect=rect_strategy())
    def delete_missing(self, rect):
        assert not self.tree.delete(rect, self.next_id + 1000)

    @rule(window=rect_strategy())
    def window_query_agrees(self, window):
        expected = sorted(oid for oid, rect in self.model.items()
                          if rect.intersects(window))
        assert sorted(self.tree.window_query(window)) == expected

    @invariant()
    def size_agrees(self):
        assert len(self.tree) == len(self.model)

    @invariant()
    def structure_valid(self):
        validate_rtree(self.tree)


TestRTreeStateful = RTreeMachine.TestCase
TestRTreeStateful.settings = settings(max_examples=25,
                                      stateful_step_count=30,
                                      deadline=None)
