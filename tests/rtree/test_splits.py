"""Unit tests for the split algorithms (Guttman and R*)."""

import random

import pytest

from repro.geometry import Rect
from repro.rtree import (Entry, linear_split, quadratic_split, rstar_split)


def entries_from(rects):
    return [Entry(r, i) for i, r in enumerate(rects)]


def random_entries(n, seed):
    rng = random.Random(seed)
    rects = []
    for _ in range(n):
        x, y = rng.random() * 100, rng.random() * 100
        rects.append(Rect(x, y, x + rng.random() * 10, y + rng.random() * 10))
    return entries_from(rects)


@pytest.mark.parametrize("split", [quadratic_split, linear_split,
                                   rstar_split])
class TestSplitContracts:
    def test_partition_is_complete_and_disjoint(self, split):
        entries = random_entries(30, seed=1)
        g1, g2 = split(entries, 6)
        refs1 = {e.ref for e in g1}
        refs2 = {e.ref for e in g2}
        assert refs1 | refs2 == {e.ref for e in entries}
        assert not refs1 & refs2

    def test_min_fill_respected(self, split):
        for seed in range(5):
            entries = random_entries(21, seed=seed)
            g1, g2 = split(entries, 8)
            assert len(g1) >= 8 and len(g2) >= 8

    def test_two_entries(self, split):
        entries = entries_from([Rect(0, 0, 1, 1), Rect(5, 5, 6, 6)])
        if split is rstar_split:
            g1, g2 = split(entries, 1)
        else:
            g1, g2 = split(entries, 1)
        assert len(g1) == 1 and len(g2) == 1

    def test_identical_rectangles(self, split):
        entries = entries_from([Rect(0, 0, 1, 1)] * 10)
        g1, g2 = split(entries, 4)
        assert len(g1) + len(g2) == 10
        assert len(g1) >= 4 and len(g2) >= 4


class TestSeparationQuality:
    def test_quadratic_separates_two_clusters(self):
        cluster_a = [Rect(x, 0, x + 1, 1) for x in range(5)]
        cluster_b = [Rect(x + 100, 0, x + 101, 1) for x in range(5)]
        g1, g2 = quadratic_split(entries_from(cluster_a + cluster_b), 2)
        mbr1 = Rect.mbr_of(e.rect for e in g1)
        mbr2 = Rect.mbr_of(e.rect for e in g2)
        assert not mbr1.intersects(mbr2)

    def test_rstar_separates_two_clusters(self):
        cluster_a = [Rect(x, 0, x + 1, 1) for x in range(5)]
        cluster_b = [Rect(x + 100, 0, x + 101, 1) for x in range(5)]
        g1, g2 = rstar_split(entries_from(cluster_a + cluster_b), 2)
        mbr1 = Rect.mbr_of(e.rect for e in g1)
        mbr2 = Rect.mbr_of(e.rect for e in g2)
        assert not mbr1.intersects(mbr2)

    def test_rstar_picks_better_axis(self):
        # Entries form a vertical strip: the split must be along y.
        rects = [Rect(0, 10 * i, 1, 10 * i + 1) for i in range(10)]
        g1, g2 = rstar_split(entries_from(rects), 3)
        mbr1 = Rect.mbr_of(e.rect for e in g1)
        mbr2 = Rect.mbr_of(e.rect for e in g2)
        assert mbr1.intersection_area(mbr2) == 0.0
        assert mbr1.yu <= mbr2.yl or mbr2.yu <= mbr1.yl


class TestErrors:
    def test_quadratic_single_entry_rejected(self):
        with pytest.raises(ValueError):
            quadratic_split(entries_from([Rect(0, 0, 1, 1)]), 1)

    def test_linear_single_entry_rejected(self):
        with pytest.raises(ValueError):
            linear_split(entries_from([Rect(0, 0, 1, 1)]), 1)

    def test_rstar_too_few_for_min_fill_rejected(self):
        with pytest.raises(ValueError):
            rstar_split(random_entries(5, seed=2), 3)
