"""Unit tests for tree persistence."""

import pytest

from repro.geometry import Rect
from repro.rtree import (GuttmanRTree, PersistenceError, RStarTree,
                         RTreeParams, load_tree, save_tree, str_pack,
                         tree_properties, validate_rtree)
from tests.conftest import build_rstar, make_rects


def test_roundtrip_preserves_queries(tmp_path):
    records = make_rects(1200, seed=51)
    tree = build_rstar(records, page_size=256)
    path = str(tmp_path / "tree.rt")
    pages = save_tree(tree, path)
    assert pages > 1
    loaded = load_tree(path)
    validate_rtree(loaded)
    assert len(loaded) == len(tree)
    assert loaded.height == tree.height
    for window in (Rect(0, 0, 200, 200), Rect(400, 400, 900, 900)):
        assert sorted(loaded.window_query(window)) == \
            sorted(tree.window_query(window))


def test_roundtrip_preserves_properties(tmp_path):
    records = make_rects(800, seed=52)
    tree = build_rstar(records, page_size=512)
    path = str(tmp_path / "tree.rt")
    save_tree(tree, path)
    loaded = load_tree(path)
    assert tree_properties(loaded) == tree_properties(tree)


def test_loaded_tree_is_updatable(tmp_path):
    records = make_rects(300, seed=53)
    tree = build_rstar(records)
    path = str(tmp_path / "tree.rt")
    save_tree(tree, path)
    loaded = load_tree(path)
    loaded.insert(Rect(1, 1, 2, 2), 7777)
    assert 7777 in loaded.window_query(Rect(0, 0, 3, 3))
    rect, ref = records[0]
    assert loaded.delete(rect, ref)
    validate_rtree(loaded)


@pytest.mark.parametrize("make_tree", [
    lambda records: build_rstar(records),
    lambda records: _guttman(records, "quadratic"),
    lambda records: _guttman(records, "linear"),
    lambda records: str_pack(records, RTreeParams.from_page_size(1024)),
])
def test_all_variants_roundtrip(tmp_path, make_tree):
    records = make_rects(400, seed=54)
    tree = make_tree(records)
    path = str(tmp_path / "tree.rt")
    save_tree(tree, path)
    loaded = load_tree(path)
    assert loaded.variant == tree.variant
    assert sorted(loaded.window_query(Rect(0, 0, 1000, 1000))) == \
        sorted(tree.window_query(Rect(0, 0, 1000, 1000)))


def _guttman(records, split):
    tree = GuttmanRTree(RTreeParams.from_page_size(1024), split=split)
    for rect, ref in records:
        tree.insert(rect, ref)
    return tree


def test_negative_leaf_refs_roundtrip(tmp_path):
    tree = RStarTree(RTreeParams.from_page_size(1024))
    tree.insert(Rect(0, 0, 1, 1), -5)
    path = str(tmp_path / "tree.rt")
    save_tree(tree, path)
    assert load_tree(path).window_query(Rect(0, 0, 1, 1)) == [-5]


def test_garbage_file_rejected(tmp_path):
    path = tmp_path / "junk.rt"
    path.write_bytes(b"not a tree at all" * 10)
    with pytest.raises(PersistenceError):
        load_tree(str(path))


def test_truncated_file_rejected(tmp_path):
    path = tmp_path / "short.rt"
    path.write_bytes(b"xx")
    with pytest.raises(PersistenceError):
        load_tree(str(path))


def test_bitflip_detected_by_checksum(tmp_path):
    records = make_rects(300, seed=55)
    tree = build_rstar(records)
    path = tmp_path / "tree.rt"
    save_tree(tree, str(path))
    data = bytearray(path.read_bytes())
    # Flip one byte in the middle of a node page (past the header page).
    target = len(data) // 2
    data[target] ^= 0xFF
    path.write_bytes(bytes(data))
    with pytest.raises(PersistenceError, match="checksum|corrupt|variant|"
                                               "height|nodes"):
        load_tree(str(path))


def test_checksum_catches_payload_corruption_specifically(tmp_path):
    records = make_rects(200, seed=56)
    tree = build_rstar(records)
    path = tmp_path / "tree.rt"
    pages = save_tree(tree, str(path))
    assert pages >= 2
    data = bytearray(path.read_bytes())
    # Corrupt a coordinate byte inside the *last* node page, well past
    # its CRC field: offset = page_start + 4 (store header) + 4 (crc)
    # + 8 (node header) + a few bytes into the first entry.
    page_size = len(data) // pages
    offset = (pages - 1) * page_size + 4 + 4 + 8 + 3
    data[offset] ^= 0x5A
    path.write_bytes(bytes(data))
    with pytest.raises(PersistenceError, match="checksum"):
        load_tree(str(path))


def test_corrupted_crc_field_itself_rejected(tmp_path):
    # Flipping a byte of the *stored checksum* (rather than the body it
    # guards) must fail the same way: the comparison is symmetric.
    records = make_rects(300, seed=57)
    tree = build_rstar(records)
    path = tmp_path / "tree.rt"
    pages = save_tree(tree, str(path))
    data = bytearray(path.read_bytes())
    page_size = len(data) // pages
    # First node page: store header (4) puts the CRC at offset 4.
    offset = page_size + 4
    data[offset] ^= 0x01
    path.write_bytes(bytes(data))
    with pytest.raises(PersistenceError, match="checksum"):
        load_tree(str(path))


def test_save_tree_is_atomic_over_existing_file(tmp_path, monkeypatch):
    # save_tree stages to a temp sibling; a crash mid-save must leave
    # the previously saved tree loadable and no staging debris behind.
    records = make_rects(400, seed=58)
    tree = build_rstar(records)
    path = str(tmp_path / "tree.rt")
    save_tree(tree, path)

    bigger = build_rstar(make_rects(900, seed=59))

    import repro.rtree.persist as persist_module

    class Boom(RuntimeError):
        pass

    calls = {"n": 0}
    original = persist_module.FilePageStore.write

    def exploding_write(self, page_id, data):
        calls["n"] += 1
        if calls["n"] > 5:
            raise Boom("simulated crash mid-save")
        return original(self, page_id, data)

    monkeypatch.setattr(persist_module.FilePageStore, "write",
                        exploding_write)
    with pytest.raises(Boom):
        save_tree(bigger, path)
    monkeypatch.undo()

    loaded = load_tree(path)
    validate_rtree(loaded)
    assert len(loaded) == len(tree)
    leftovers = [entry for entry in tmp_path.iterdir()
                 if entry.name != "tree.rt"]
    assert leftovers == []
