"""Tests for the columnar node layout (``NodeColumns``).

Three contracts: the accessor API agrees with the ``Entry`` view, the
persistence layer round-trips column buffers bit-exactly (both the
numpy and stdlib-``array`` backends), and the cached columns of every
node stay in sync with its entries across arbitrary R*-tree
insert/delete workloads — including forced reinsertion, splits, and
root collapses.
"""

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Rect
from repro.rtree import (NodeColumns, RStarTree, RTreeParams,
                         force_stdlib, load_tree, save_tree, use_numpy)
from repro.rtree.entry import Entry
from repro.rtree.persist import decode_node_body, encode_node_body
from tests.conftest import build_rstar, make_rects


# ----------------------------------------------------------------------
# Accessor API
# ----------------------------------------------------------------------

def sample_entries():
    rng = random.Random(5)
    out = []
    for i in range(37):
        x, y = rng.random() * 100, rng.random() * 100
        out.append(Entry(Rect(x, y, x + rng.random() * 9,
                              y + rng.random() * 9), i * 3 - 10))
    return out


def test_columns_mirror_entries():
    entries = sample_entries()
    cols = NodeColumns.from_entries(entries)
    assert len(cols) == len(entries)
    for i, entry in enumerate(entries):
        assert cols.rect(i) == entry.rect
        assert cols.ref(i) == entry.ref
        assert isinstance(cols.ref(i), int)
    assert cols.child_refs() == [e.ref for e in entries]
    assert list(cols.iter_rect_refs()) == [(e.rect, e.ref)
                                           for e in entries]
    assert [e.rect for e in cols.to_entries()] == \
        [e.rect for e in entries]


def test_columns_mbr_matches_union():
    entries = sample_entries()
    cols = NodeColumns.from_entries(entries)
    expected = entries[0].rect
    for entry in entries[1:]:
        expected = expected.union(entry.rect)
    assert cols.mbr() == expected


def test_take_preserves_order_and_backend():
    cols = NodeColumns.from_entries(sample_entries())
    taken = cols.take([5, 1, 30])
    assert taken.is_numpy == cols.is_numpy
    assert [taken.ref(i) for i in range(3)] == \
        [cols.ref(5), cols.ref(1), cols.ref(30)]
    assert taken.rect(2) == cols.rect(30)


def test_backends_agree():
    entries = sample_entries()
    default = NodeColumns.from_entries(entries)
    previous = force_stdlib(True)
    try:
        stdlib = NodeColumns.from_entries(entries)
    finally:
        force_stdlib(previous)
    assert not stdlib.is_numpy
    assert stdlib.same_rows(default)
    assert default.same_rows(stdlib)


# ----------------------------------------------------------------------
# Persistence round-trip of column buffers
# ----------------------------------------------------------------------

def node_body_roundtrip(tree):
    """encode → decode every node; coordinates must be bit-exact."""
    stack = [tree.root_id]
    while stack:
        node = tree.node(stack.pop())
        refs = node.columns.child_refs()
        level, decoded = decode_node_body(
            encode_node_body(node, refs))
        assert level == node.level
        assert len(decoded) == len(node)
        for i in range(len(decoded)):
            original = node.columns.rect(i)
            restored = decoded.rect(i)
            # Bit-exact, not approx: the wire format is IEEE doubles.
            assert math.copysign(1.0, restored.xl) == \
                math.copysign(1.0, original.xl)
            assert (restored.xl, restored.yl, restored.xu,
                    restored.yu) == (original.xl, original.yl,
                                     original.xu, original.yu)
            assert decoded.ref(i) == refs[i]
        if not node.is_leaf:
            stack.extend(refs)


def test_node_body_roundtrip_bit_exact():
    node_body_roundtrip(build_rstar(make_rects(500, seed=12)))


def test_node_body_roundtrip_stdlib_backend():
    previous = force_stdlib(True)
    try:
        node_body_roundtrip(build_rstar(make_rects(300, seed=13)))
    finally:
        force_stdlib(previous)


def test_full_tree_roundtrip_preserves_columns(tmp_path):
    tree = build_rstar(make_rects(400, seed=14))
    path = str(tmp_path / "cols.rtree")
    save_tree(tree, path)
    loaded = load_tree(path)
    # Same structure: compare every node's columns pairwise.
    stack = [(tree.root_id, loaded.root_id)]
    while stack:
        ref_a, ref_b = stack.pop()
        node_a, node_b = tree.node(ref_a), loaded.node(ref_b)
        cols_a, cols_b = node_a.columns, node_b.columns
        assert node_a.level == node_b.level
        assert len(cols_a) == len(cols_b)
        for i in range(len(cols_a)):
            assert cols_a.rect(i) == cols_b.rect(i)
        if node_a.is_leaf:
            assert cols_a.child_refs() == cols_b.child_refs()
        else:
            stack.extend(zip(cols_a.child_refs(),
                             cols_b.child_refs()))


def test_mixed_backend_roundtrip(tmp_path):
    """A tree saved under one backend loads under the other."""
    if not use_numpy():
        return  # single-backend environment: covered above
    tree = build_rstar(make_rects(250, seed=15))
    path = str(tmp_path / "mixed.rtree")
    save_tree(tree, path)
    previous = force_stdlib(True)
    try:
        loaded = load_tree(path)
        root = loaded.node(loaded.root_id)
        assert not root.columns.is_numpy
        window = Rect(100, 100, 600, 600)
        assert sorted(loaded.window_query(window)) == \
            sorted(tree.window_query(window))
    finally:
        force_stdlib(previous)


# ----------------------------------------------------------------------
# Columns stay in sync under mutation (hypothesis)
# ----------------------------------------------------------------------

coords = st.floats(min_value=0.0, max_value=100.0,
                   allow_nan=False, allow_infinity=False)


@st.composite
def rect_strategy(draw):
    x = draw(coords)
    y = draw(coords)
    w = draw(st.floats(min_value=0.0, max_value=10.0))
    h = draw(st.floats(min_value=0.0, max_value=10.0))
    return Rect(x, y, x + w, y + h)


def assert_columns_in_sync(tree):
    """Every node's cached columns mirror its entry list exactly."""
    stack = [tree.root_id]
    while stack:
        node = tree.node(stack.pop())
        cols = node.columns
        entries = node.entries
        assert len(cols) == len(entries)
        for i, entry in enumerate(entries):
            assert cols.rect(i) == entry.rect
            assert cols.ref(i) == entry.ref
        if not node.is_leaf:
            stack.extend(cols.child_refs())


@settings(max_examples=25, deadline=None)
@given(st.lists(rect_strategy(), min_size=1, max_size=120), st.data())
def test_columns_sync_after_insert_delete(rect_list, data):
    """Small pages (M=4) force splits and R* reinsertion early; the
    cached columnar view must track every structural mutation."""
    params = RTreeParams.from_page_size(80)
    tree = RStarTree(params)
    live = {}
    for i, rect in enumerate(rect_list):
        tree.insert(rect, i)
        live[i] = rect
    assert_columns_in_sync(tree)
    # Delete a random subset, checking sync along the way.
    doomed = data.draw(st.lists(
        st.sampled_from(sorted(live)), unique=True,
        max_size=len(live)))
    for oid in doomed:
        tree.delete(live.pop(oid), oid)
    assert_columns_in_sync(tree)
    window = Rect(20, 20, 80, 80)
    expected = sorted(oid for oid, rect in live.items()
                      if rect.intersects(window))
    assert sorted(tree.window_query(window)) == expected
