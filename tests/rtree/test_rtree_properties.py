"""Property-based tests: random workloads keep structural invariants
and query correctness (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Rect
from repro.rtree import (GuttmanRTree, RStarTree, RTreeParams,
                         validate_rtree)

coords = st.floats(min_value=0.0, max_value=100.0,
                   allow_nan=False, allow_infinity=False)


@st.composite
def rect_strategy(draw):
    x = draw(coords)
    y = draw(coords)
    w = draw(st.floats(min_value=0.0, max_value=10.0))
    h = draw(st.floats(min_value=0.0, max_value=10.0))
    return Rect(x, y, x + w, y + h)


@settings(max_examples=30, deadline=None)
@given(st.lists(rect_strategy(), min_size=0, max_size=120))
def test_rstar_insert_invariants_and_queries(rect_list):
    params = RTreeParams.from_page_size(80)   # M=4: splits happen early
    tree = RStarTree(params)
    for i, rect in enumerate(rect_list):
        tree.insert(rect, i)
    validate_rtree(tree)
    window = Rect(25, 25, 75, 75)
    expected = sorted(i for i, rect in enumerate(rect_list)
                      if rect.intersects(window))
    assert sorted(tree.window_query(window)) == expected


@settings(max_examples=20, deadline=None)
@given(st.lists(rect_strategy(), min_size=1, max_size=100),
       st.data())
def test_rstar_delete_subset_keeps_invariants(rect_list, data):
    params = RTreeParams.from_page_size(80)
    tree = RStarTree(params)
    for i, rect in enumerate(rect_list):
        tree.insert(rect, i)
    to_delete = data.draw(st.sets(
        st.integers(min_value=0, max_value=len(rect_list) - 1)))
    for i in sorted(to_delete):
        assert tree.delete(rect_list[i], i)
    validate_rtree(tree)
    window = Rect(0, 0, 100, 100)
    expected = sorted(i for i, rect in enumerate(rect_list)
                      if i not in to_delete and rect.intersects(window))
    assert sorted(tree.window_query(window)) == expected


@settings(max_examples=15, deadline=None)
@given(st.lists(rect_strategy(), min_size=0, max_size=80))
def test_guttman_invariants_and_queries(rect_list):
    params = RTreeParams.from_page_size(80)
    tree = GuttmanRTree(params)
    for i, rect in enumerate(rect_list):
        tree.insert(rect, i)
    validate_rtree(tree)
    window = Rect(10, 10, 60, 60)
    expected = sorted(i for i, rect in enumerate(rect_list)
                      if rect.intersects(window))
    assert sorted(tree.window_query(window)) == expected
