"""Unit tests for scrub/repair of persisted tree files."""

import struct

import pytest

from repro.core import spatial_join
from repro.geometry import Rect
from repro.rtree import (PersistenceError, load_tree, repair_tree,
                         save_tree, scrub_tree, str_pack, validate_rtree,
                         RTreeParams)
from tests.conftest import build_rstar, make_rects

_EVERYTHING = Rect(-1e9, -1e9, 1e9, 1e9)


def _saved_tree(tmp_path, count=600, seed=61, page_size=256):
    records = make_rects(count, seed=seed)
    tree = build_rstar(records, page_size=page_size)
    path = str(tmp_path / "tree.rt")
    pages = save_tree(tree, path)
    return tree, path, pages


def _page_levels(path, pages):
    """Map file page index -> node level, parsed raw from the file."""
    with open(path, "rb") as handle:
        data = handle.read()
    physical = len(data) // pages
    levels = {}
    for index in range(1, pages):
        offset = index * physical + 4 + 4      # store header + crc
        (level,) = struct.unpack_from("<i", data, offset)
        levels[index] = level
    return levels, physical


def _corrupt_page(path, page, physical):
    """Flip a byte inside *page*'s body (past store header and CRC)."""
    with open(path, "r+b") as handle:
        handle.seek(page * physical + 4 + 4 + 10)
        byte = handle.read(1)
        handle.seek(-1, 1)
        handle.write(bytes([byte[0] ^ 0xFF]))


class TestScrub:
    def test_clean_file_scrubs_ok(self, tmp_path):
        tree, path, pages = _saved_tree(tmp_path)
        report = scrub_tree(path)
        assert report.ok
        assert report.node_count == pages - 1
        assert report.expected_entries == len(tree)
        assert report.damaged == []
        assert "all checksums verify" in report.render()

    def test_corrupted_page_is_reported_not_raised(self, tmp_path):
        _tree, path, pages = _saved_tree(tmp_path)
        _levels, physical = _page_levels(path, pages)
        _corrupt_page(path, 2, physical)
        report = scrub_tree(path)
        assert not report.ok
        assert [d.page for d in report.damaged] == [2]
        assert "checksum mismatch" in report.damaged[0].reason
        # load_tree refuses the same file the scrub merely censuses.
        with pytest.raises(PersistenceError):
            load_tree(path)

    def test_torn_tail_file_is_scrubbable(self, tmp_path):
        _tree, path, pages = _saved_tree(tmp_path)
        _levels, physical = _page_levels(path, pages)
        with open(path, "r+b") as handle:
            handle.truncate(pages * physical - physical // 2)
        report = scrub_tree(path)
        assert [d.page for d in report.damaged] == [pages - 1]
        assert "end of the file" in report.damaged[0].reason

    def test_non_tree_file_raises(self, tmp_path):
        path = tmp_path / "junk.rt"
        path.write_bytes(b"garbage" * 100)
        with pytest.raises(PersistenceError):
            scrub_tree(str(path))

    def test_truncated_header_raises(self, tmp_path):
        path = tmp_path / "short.rt"
        path.write_bytes(b"xx")
        with pytest.raises(PersistenceError):
            scrub_tree(str(path))


class TestRepair:
    def test_directory_damage_loses_nothing(self, tmp_path):
        tree, path, pages = _saved_tree(tmp_path)
        levels, physical = _page_levels(path, pages)
        directory = next(p for p, lv in levels.items() if lv > 0)
        _corrupt_page(path, directory, physical)

        output = str(tmp_path / "repaired.rt")
        report = repair_tree(path, output)
        assert report.complete
        assert report.recovered_entries == len(tree)
        assert report.lost_entries == 0
        assert "complete" in report.render()

        repaired = load_tree(output)
        validate_rtree(repaired)
        assert sorted(repaired.window_query(_EVERYTHING)) == \
            sorted(tree.window_query(_EVERYTHING))

    def test_repaired_tree_reproduces_join_result(self, tmp_path):
        tree, path, pages = _saved_tree(tmp_path, count=500, seed=62)
        other = build_rstar(make_rects(500, seed=63), page_size=256)
        baseline = sorted(spatial_join(tree, other).pairs)

        levels, physical = _page_levels(path, pages)
        directory = next(p for p, lv in levels.items() if lv > 0)
        _corrupt_page(path, directory, physical)
        output = str(tmp_path / "repaired.rt")
        repair_tree(path, output)

        repaired = load_tree(output)
        assert sorted(spatial_join(repaired, other).pairs) == baseline

    def test_leaf_damage_loses_exactly_that_leaf(self, tmp_path):
        tree, path, pages = _saved_tree(tmp_path)
        levels, physical = _page_levels(path, pages)
        leaf = next(p for p, lv in levels.items() if lv == 0)
        _corrupt_page(path, leaf, physical)

        output = str(tmp_path / "repaired.rt")
        report = repair_tree(path, output)
        assert not report.complete
        assert 0 < report.lost_entries < len(tree)
        assert report.recovered_entries == len(tree) - report.lost_entries
        assert "lost" in report.render()

        repaired = load_tree(output)
        validate_rtree(repaired)
        survivors = set(repaired.window_query(_EVERYTHING))
        assert survivors < set(tree.window_query(_EVERYTHING))
        assert len(survivors) == report.recovered_entries

    def test_packed_variant_repairs_via_str_pack(self, tmp_path):
        records = make_rects(400, seed=64)
        tree = str_pack(records, RTreeParams.from_page_size(1024))
        path = str(tmp_path / "packed.rt")
        pages = save_tree(tree, path)
        levels, physical = _page_levels(path, pages)
        directory = next(p for p, lv in levels.items() if lv > 0)
        _corrupt_page(path, directory, physical)

        output = str(tmp_path / "repaired.rt")
        report = repair_tree(path, output)
        assert report.complete
        repaired = load_tree(output)
        assert repaired.variant == "packed"
        validate_rtree(repaired, check_min_fill=False)
        assert sorted(repaired.window_query(_EVERYTHING)) == \
            sorted(tree.window_query(_EVERYTHING))

    def test_nothing_to_rebuild_raises(self, tmp_path):
        # A single-node tree whose only (leaf) page is destroyed.
        tree = build_rstar(make_rects(5, seed=65))
        path = str(tmp_path / "tiny.rt")
        pages = save_tree(tree, path)
        assert pages == 2
        _levels, physical = _page_levels(path, pages)
        _corrupt_page(path, 1, physical)
        with pytest.raises(PersistenceError, match="no leaf entries"):
            repair_tree(path, str(tmp_path / "out.rt"))
