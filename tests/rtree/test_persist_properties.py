"""Property-based persistence round trips (hypothesis)."""

import os
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Rect
from repro.rtree import (RStarTree, RTreeParams, load_tree, save_tree,
                         tree_properties, validate_rtree)

coords = st.floats(min_value=-1e5, max_value=1e5,
                   allow_nan=False, allow_infinity=False)


@st.composite
def rect_strategy(draw):
    x = draw(coords)
    y = draw(coords)
    w = draw(st.floats(min_value=0.0, max_value=1e3))
    h = draw(st.floats(min_value=0.0, max_value=1e3))
    return Rect(x, y, x + w, y + h)


@settings(max_examples=20, deadline=None)
@given(st.lists(rect_strategy(), min_size=1, max_size=80),
       st.lists(st.integers(min_value=-2**40, max_value=2**40),
                min_size=1, max_size=80))
def test_roundtrip_preserves_everything(rect_list, refs):
    refs = (refs * (len(rect_list) // len(refs) + 1))[:len(rect_list)]
    # Make refs unique to keep delete-by-id meaningful.
    refs = [r * 100 + i for i, r in enumerate(refs)]
    tree = RStarTree(RTreeParams.from_page_size(80))
    for rect, ref in zip(rect_list, refs):
        tree.insert(rect, ref)

    handle, path = tempfile.mkstemp(suffix=".rtree")
    os.close(handle)
    try:
        save_tree(tree, path)
        loaded = load_tree(path)
    finally:
        os.unlink(path)

    validate_rtree(loaded)
    assert tree_properties(loaded) == tree_properties(tree)
    window = Rect(-1e5, -1e5, 2e5, 2e5)
    assert sorted(loaded.window_query(window)) == \
        sorted(tree.window_query(window))
    # Exact coordinates survive the float64 serialization.
    original = {(e.rect, e.ref) for e in tree.iter_data_entries()}
    reloaded = {(e.rect, e.ref) for e in loaded.iter_data_entries()}
    assert reloaded == original
