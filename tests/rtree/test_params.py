"""Unit tests for capacity parameters (Table 1's M column)."""

import pytest

from repro.rtree import ENTRY_BYTES, RTreeParams


def test_entry_size_is_twenty_bytes():
    assert ENTRY_BYTES == 20


@pytest.mark.parametrize("page_size,expected_m", [
    (1024, 51), (2048, 102), (4096, 204), (8192, 409),
])
def test_paper_capacities(page_size, expected_m):
    params = RTreeParams.from_page_size(page_size)
    assert params.max_entries == expected_m


def test_min_entries_default_forty_percent():
    params = RTreeParams.from_page_size(1024)
    assert params.min_entries == 20            # round(0.4 * 51)


def test_min_entries_within_bounds():
    # The paper's constraint: 2 <= m <= ceil(M/2).
    for page_size in (64, 128, 1024, 8192):
        params = RTreeParams.from_page_size(page_size)
        assert 2 <= params.min_entries <= (params.max_entries + 1) // 2


def test_reinsert_count_default_thirty_percent():
    params = RTreeParams.from_page_size(1024)
    assert params.reinsert_count == 15         # round(0.3 * 51)


def test_tiny_page_rejected():
    with pytest.raises(ValueError):
        RTreeParams.from_page_size(40)


def test_invalid_min_fill_rejected():
    with pytest.raises(ValueError):
        RTreeParams.from_page_size(1024, min_fill=0.0)
    with pytest.raises(ValueError):
        RTreeParams.from_page_size(1024, min_fill=0.7)


def test_invalid_reinsert_fraction_rejected():
    with pytest.raises(ValueError):
        RTreeParams.from_page_size(1024, reinsert_fraction=0.0)
    with pytest.raises(ValueError):
        RTreeParams.from_page_size(1024, reinsert_fraction=1.0)


def test_direct_construction_validated():
    with pytest.raises(ValueError):
        RTreeParams(page_size=1024, max_entries=10, min_entries=6,
                    reinsert_count=3)
    with pytest.raises(ValueError):
        RTreeParams(page_size=1024, max_entries=2, min_entries=2,
                    reinsert_count=1)
