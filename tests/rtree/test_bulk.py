"""Unit tests for bulk loading (STR / Hilbert packing)."""

import pytest

from repro.geometry import Rect
from repro.rtree import (RTreeParams, chunk_balanced, hilbert_pack, str_pack,
                         tree_properties, validate_rtree)
from tests.conftest import make_rects


@pytest.mark.parametrize("pack", [str_pack, hilbert_pack])
class TestPacking:
    def test_queries_match_brute_force(self, pack):
        records = make_rects(2000, seed=31)
        tree = pack(records, RTreeParams.from_page_size(512))
        validate_rtree(tree)
        window = Rect(100, 100, 400, 400)
        expected = sorted(ref for rect, ref in records
                          if rect.intersects(window))
        assert sorted(tree.window_query(window)) == expected

    def test_high_utilization(self, pack):
        records = make_rects(2000, seed=32)
        tree = pack(records, RTreeParams.from_page_size(512))
        assert tree_properties(tree).storage_utilization > 0.9

    def test_partial_fill(self, pack):
        records = make_rects(1000, seed=33)
        tree = pack(records, RTreeParams.from_page_size(512), fill=0.7)
        validate_rtree(tree)
        props = tree_properties(tree)
        assert 0.55 < props.storage_utilization < 0.85

    def test_updates_after_packing(self, pack):
        records = make_rects(500, seed=34)
        tree = pack(records, RTreeParams.from_page_size(256))
        tree.insert(Rect(1, 1, 2, 2), 9999)
        assert 9999 in tree.window_query(Rect(0, 0, 3, 3))
        rect, ref = records[0]
        assert tree.delete(rect, ref)
        validate_rtree(tree)

    def test_empty_input_rejected(self, pack):
        with pytest.raises(ValueError):
            pack([], RTreeParams.from_page_size(512))

    def test_bad_fill_rejected(self, pack):
        records = make_rects(10, seed=35)
        with pytest.raises(ValueError):
            pack(records, RTreeParams.from_page_size(512), fill=0.0)

    def test_single_record(self, pack):
        tree = pack([(Rect(0, 0, 1, 1), 7)],
                    RTreeParams.from_page_size(512))
        assert tree.window_query(Rect(0, 0, 2, 2)) == [7]
        assert len(tree) == 1


class TestChunkBalanced:
    def test_even_chunks(self):
        runs = chunk_balanced(list(range(10)), 5, 2)
        assert [len(r) for r in runs] == [5, 5]

    def test_small_tail_balanced(self):
        runs = chunk_balanced(list(range(11)), 10, 4)
        assert [len(r) for r in runs] == [5, 6]
        assert sorted(x for run in runs for x in run) == list(range(11))

    def test_small_tail_merged_when_fits(self):
        runs = chunk_balanced(list(range(7)), 10, 4)
        assert [len(r) for r in runs] == [7]

    def test_single_small_run_allowed(self):
        runs = chunk_balanced([1], 10, 4)
        assert runs == [[1]]

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            chunk_balanced([1], 0, 1)
