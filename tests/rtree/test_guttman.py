"""Unit tests for the Guttman R-tree variants."""

import pytest

from repro.geometry import Rect
from repro.rtree import GuttmanRTree, RTreeParams, validate_rtree
from tests.conftest import make_rects


@pytest.mark.parametrize("split", ["quadratic", "linear"])
def test_build_query_delete(split):
    records = make_rects(1500, seed=21)
    tree = GuttmanRTree(RTreeParams.from_page_size(256), split=split)
    for rect, ref in records:
        tree.insert(rect, ref)
    validate_rtree(tree)
    window = Rect(200, 200, 500, 500)
    expected = sorted(ref for rect, ref in records if rect.intersects(window))
    assert sorted(tree.window_query(window)) == expected
    for rect, ref in records[:500]:
        assert tree.delete(rect, ref)
    validate_rtree(tree)
    assert len(tree) == 1000


def test_variant_tags():
    params = RTreeParams.from_page_size(256)
    assert GuttmanRTree(params).variant == "guttman-quadratic"
    assert GuttmanRTree(params, split="linear").variant == "guttman-linear"


def test_unknown_split_rejected():
    with pytest.raises(ValueError):
        GuttmanRTree(RTreeParams.from_page_size(256), split="magic")


def test_least_enlargement_choice():
    from repro.rtree import Entry, least_enlargement_index
    entries = [Entry(Rect(0, 0, 10, 10), 0), Entry(Rect(20, 20, 21, 21), 1)]
    # Inserting near the small rectangle should choose it (less growth).
    assert least_enlargement_index(entries, Rect(22, 22, 23, 23)) == 1
    # Inserting inside the big one chooses it (zero growth).
    assert least_enlargement_index(entries, Rect(1, 1, 2, 2)) == 0
