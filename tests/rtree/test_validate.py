"""Unit tests for the invariant checker itself."""

import pytest

from repro.geometry import Rect
from repro.rtree import (RStarTree, RTreeInvariantError, RTreeParams,
                         is_valid, validate_rtree)
from tests.conftest import build_rstar, make_rects


@pytest.fixture
def valid_tree():
    return build_rstar(make_rects(600, seed=41), page_size=256)


def test_valid_tree_passes(valid_tree):
    validate_rtree(valid_tree)
    assert is_valid(valid_tree)


def test_detects_loose_routing_rectangle(valid_tree):
    root = valid_tree.root
    entry = root.entries[0]
    entry.rect = entry.rect.union(Rect(-1000, -1000, -999, -999))
    with pytest.raises(RTreeInvariantError, match="routing rectangle"):
        validate_rtree(valid_tree)
    assert not is_valid(valid_tree)


def test_detects_wrong_count(valid_tree):
    valid_tree._size += 1
    with pytest.raises(RTreeInvariantError, match="data entries"):
        validate_rtree(valid_tree)


def test_detects_underfull_node(valid_tree):
    for node in valid_tree.iter_nodes():
        if node.is_leaf and node.page_id != valid_tree.root_id:
            removed = node.entries.pop()
            break
    # Fix the count so only the fill violation (or the MBR) trips.
    valid_tree._size -= 1
    with pytest.raises(RTreeInvariantError):
        validate_rtree(valid_tree)


def test_min_fill_check_can_be_relaxed():
    params = RTreeParams.from_page_size(80)
    tree = RStarTree(params)
    for i in range(30):
        tree.insert(Rect(i, 0, i + 1, 1), i)
    # Manufacture an underfull leaf but keep its parent MBR exact.
    for node in tree.iter_nodes():
        if node.is_leaf and node.page_id != tree.root_id:
            while len(node.entries) >= params.min_entries:
                node.entries.pop()
                tree._size -= 1
            break
    # Recompute ancestors' rectangles so only the fill check trips.
    def fix(node):
        if node.is_leaf:
            return
        for entry in node.entries:
            child = tree.node(entry.ref)
            fix(child)
            entry.rect = child.mbr()
    fix(tree.root)
    with pytest.raises(RTreeInvariantError, match="entries"):
        validate_rtree(tree, check_min_fill=True)
    validate_rtree(tree, check_min_fill=False)


def test_detects_overfull_node(valid_tree):
    for node in valid_tree.iter_nodes():
        if node.is_leaf:
            from repro.rtree import Entry
            extra = valid_tree.params.max_entries + 1 - len(node.entries)
            for k in range(extra):
                node.entries.append(Entry(node.entries[0].rect, 100000 + k))
            break
    with pytest.raises(RTreeInvariantError):
        validate_rtree(valid_tree)


def test_detects_nonleaf_root_with_single_child():
    params = RTreeParams.from_page_size(80)
    tree = RStarTree(params)
    for i in range(30):
        tree.insert(Rect(i, 0, i + 1, 1), i)
    root = tree.root
    assert not root.is_leaf
    del root.entries[1:]
    with pytest.raises(RTreeInvariantError, match="children"):
        validate_rtree(tree)
