"""Unit tests specific to the R*-tree insertion algorithms."""

import random

from repro.geometry import Rect
from repro.rtree import (GuttmanRTree, RStarTree, RTreeParams,
                         tree_properties, validate_rtree)
from tests.conftest import make_rects


def test_variant_tag():
    tree = RStarTree(RTreeParams.from_page_size(1024))
    assert tree.variant == "rstar"


def test_forced_reinsertion_happens():
    # With M=4 the 5th insert into a non-root leaf triggers reinsert;
    # build enough data to have non-root leaves and verify validity.
    params = RTreeParams.from_page_size(80)
    tree = RStarTree(params)
    rng = random.Random(0)
    for i in range(200):
        x, y = rng.random() * 100, rng.random() * 100
        tree.insert(Rect(x, y, x + 1, y + 1), i)
    validate_rtree(tree)
    assert tree.height >= 3


def test_rstar_beats_guttman_on_overlap():
    """The R*-tree should produce directories with less overlap, which
    shows up as fewer leaf accesses for window queries."""
    records = make_rects(3000, seed=77, max_extent=20.0)
    params = RTreeParams.from_page_size(512)
    rstar = RStarTree(params)
    guttman = GuttmanRTree(params)
    for rect, ref in records:
        rstar.insert(rect, ref)
        guttman.insert(rect, ref)

    def overlap_sum(tree):
        total = 0.0
        for node in tree.iter_nodes():
            if node.is_leaf:
                continue
            entries = node.entries
            for i in range(len(entries)):
                for j in range(i + 1, len(entries)):
                    total += entries[i].rect.intersection_area(
                        entries[j].rect)
        return total

    assert overlap_sum(rstar) < overlap_sum(guttman)


def test_storage_utilization_is_reasonable():
    records = make_rects(5000, seed=5)
    tree = RStarTree(RTreeParams.from_page_size(512))
    for rect, ref in records:
        tree.insert(rect, ref)
    props = tree_properties(tree)
    # Forced reinsertion pushes utilization well above the 50% a plain
    # split-only tree would give.
    assert props.storage_utilization > 0.6


def test_sorted_insert_sequence():
    """Performance must be nearly independent of insertion order
    (a design goal of forced reinsertion); at minimum the tree stays
    valid and queries stay correct under a fully sorted sequence."""
    records = sorted(make_rects(2000, seed=6), key=lambda t: t[0].xl)
    tree = RStarTree(RTreeParams.from_page_size(256))
    for rect, ref in records:
        tree.insert(rect, ref)
    validate_rtree(tree)
    window = Rect(100, 100, 300, 300)
    expected = sorted(ref for rect, ref in records
                      if rect.intersects(window))
    assert sorted(tree.window_query(window)) == expected


def test_choose_subtree_prefers_containment():
    """An insert fully inside one child rectangle must not enlarge any
    sibling."""
    params = RTreeParams.from_page_size(80)   # M=4
    tree = RStarTree(params)
    # Two well-separated clusters forming two leaves.
    for i, x in enumerate((0, 1, 2, 100, 101, 102)):
        tree.insert(Rect(x, 0, x + 0.5, 0.5), i)
    validate_rtree(tree)
    root = tree.root
    assert not root.is_leaf
    rects_before = [e.rect for e in root.entries]
    # Insert inside the left cluster's MBR.
    tree.insert(Rect(1, 0, 1.2, 0.2), 99)
    grown = [e.rect for e in tree.root.entries
             if e.rect not in rects_before]
    # At most the chosen subtree changed (possibly none if contained).
    assert len(grown) <= 1
