"""Unit tests for the tree property census."""

from repro.rtree import RStarTree, RTreeParams, tree_properties
from tests.conftest import build_rstar, make_rects


def test_counts_are_consistent():
    records = make_rects(2000, seed=61)
    tree = build_rstar(records, page_size=512)
    props = tree_properties(tree)
    assert props.data_entries == 2000
    assert props.total_pages == props.dir_pages + props.data_pages
    assert props.total_entries == props.dir_entries + props.data_entries
    # Directory entries reference every non-root page exactly once.
    assert props.dir_entries == props.total_pages - 1
    assert props.height == tree.height
    assert props.variant == "rstar"
    assert props.page_size == 512


def test_single_leaf_tree():
    tree = RStarTree(RTreeParams.from_page_size(1024))
    tree.insert(__import__("repro.geometry", fromlist=["Rect"]).Rect(0, 0, 1, 1), 1)
    props = tree_properties(tree)
    assert props.dir_pages == 0
    assert props.data_pages == 1
    assert props.data_entries == 1
    assert props.dir_entries == 0
    assert props.height == 1


def test_utilization_bounds():
    records = make_rects(3000, seed=62)
    props = tree_properties(build_rstar(records, page_size=512))
    assert 0.0 < props.storage_utilization <= 1.0
