"""Unit tests for shared R-tree behaviour (insert/query/delete)."""

import random

import pytest

from repro.geometry import Rect
from repro.rtree import RStarTree, RTreeParams, validate_rtree
from tests.conftest import build_rstar, make_rects


@pytest.fixture
def tiny_params():
    return RTreeParams.from_page_size(80)    # M = 4, m = 2


class TestEmptyTree:
    def test_initial_state(self, tiny_params):
        tree = RStarTree(tiny_params)
        assert len(tree) == 0
        assert tree.height == 1
        assert tree.mbr() is None

    def test_query_on_empty(self, tiny_params):
        tree = RStarTree(tiny_params)
        assert tree.window_query(Rect(0, 0, 100, 100)) == []

    def test_delete_on_empty(self, tiny_params):
        tree = RStarTree(tiny_params)
        assert not tree.delete(Rect(0, 0, 1, 1), 1)


class TestInsertAndQuery:
    def test_single_insert(self, tiny_params):
        tree = RStarTree(tiny_params)
        tree.insert(Rect(0, 0, 1, 1), 42)
        assert len(tree) == 1
        assert tree.window_query(Rect(0, 0, 2, 2)) == [42]
        assert tree.mbr() == Rect(0, 0, 1, 1)

    def test_root_split_grows_height(self, tiny_params):
        tree = RStarTree(tiny_params)
        for i in range(5):   # M = 4, the 5th insert splits the root leaf
            tree.insert(Rect(i, i, i + 1, i + 1), i)
        assert tree.height == 2
        validate_rtree(tree)

    def test_window_query_matches_brute_force(self):
        records = make_rects(800, seed=9)
        tree = build_rstar(records, page_size=256)
        for window in (Rect(0, 0, 100, 100), Rect(500, 500, 600, 600),
                       Rect(0, 0, 1000, 1000), Rect(-10, -10, -1, -1)):
            expected = sorted(i for r, i in records if r.intersects(window))
            assert sorted(tree.window_query(window)) == expected

    def test_point_query(self):
        records = make_rects(300, seed=10)
        tree = build_rstar(records, page_size=256)
        x, y = 500.0, 500.0
        expected = sorted(i for r, i in records if r.contains_point(x, y))
        assert sorted(tree.point_query(x, y)) == expected

    def test_duplicate_rects_allowed(self, tiny_params):
        tree = RStarTree(tiny_params)
        for i in range(10):
            tree.insert(Rect(0, 0, 1, 1), i)
        assert sorted(tree.window_query(Rect(0, 0, 1, 1))) == list(range(10))
        validate_rtree(tree)

    def test_insert_at_level_above_root_rejected(self, tiny_params):
        from repro.rtree.entry import Entry
        tree = RStarTree(tiny_params)
        with pytest.raises(ValueError):
            tree._insert_entry(Entry(Rect(0, 0, 1, 1), 0), level=3)


class TestDelete:
    def test_delete_existing(self):
        records = make_rects(400, seed=11)
        tree = build_rstar(records, page_size=256)
        rect, ref = records[13]
        assert tree.delete(rect, ref)
        assert len(tree) == 399
        assert ref not in tree.window_query(rect)
        validate_rtree(tree)

    def test_delete_missing_returns_false(self):
        records = make_rects(50, seed=12)
        tree = build_rstar(records)
        assert not tree.delete(Rect(0, 0, 1, 1), 9999)
        assert len(tree) == 50

    def test_delete_requires_matching_rect(self):
        tree = RStarTree(RTreeParams.from_page_size(80))
        tree.insert(Rect(0, 0, 1, 1), 7)
        assert not tree.delete(Rect(0, 0, 2, 2), 7)
        assert tree.delete(Rect(0, 0, 1, 1), 7)

    def test_delete_all_then_reuse(self):
        records = make_rects(300, seed=13)
        tree = build_rstar(records, page_size=256)
        for rect, ref in records:
            assert tree.delete(rect, ref)
        assert len(tree) == 0
        assert tree.height == 1
        tree.insert(Rect(5, 5, 6, 6), 1)
        assert tree.window_query(Rect(0, 0, 10, 10)) == [1]

    def test_interleaved_insert_delete_stays_valid(self):
        rng = random.Random(4)
        tree = RStarTree(RTreeParams.from_page_size(128))
        live = {}
        next_id = 0
        for step in range(1200):
            if live and rng.random() < 0.4:
                ref = rng.choice(list(live))
                assert tree.delete(live.pop(ref), ref)
            else:
                x, y = rng.random() * 100, rng.random() * 100
                rect = Rect(x, y, x + rng.random() * 5, y + rng.random() * 5)
                tree.insert(rect, next_id)
                live[next_id] = rect
                next_id += 1
        validate_rtree(tree)
        window = Rect(20, 20, 60, 60)
        expected = sorted(ref for ref, rect in live.items()
                          if rect.intersects(window))
        assert sorted(tree.window_query(window)) == expected


class TestIntrospection:
    def test_iter_data_entries(self):
        records = make_rects(100, seed=14)
        tree = build_rstar(records)
        refs = sorted(e.ref for e in tree.iter_data_entries())
        assert refs == list(range(100))

    def test_iter_nodes_yields_root_first(self):
        records = make_rects(500, seed=15)
        tree = build_rstar(records, page_size=256)
        nodes = list(tree.iter_nodes())
        assert nodes[0].page_id == tree.root_id
        assert len(nodes) > 1

    def test_sort_all_nodes(self):
        records = make_rects(300, seed=16)
        tree = build_rstar(records, page_size=256)
        tree.sort_all_nodes()
        for node in tree.iter_nodes():
            xls = [e.rect.xl for e in node.entries]
            assert xls == sorted(xls)
            assert node.sorted_by_xl
