"""Tests for the SVG renderer."""

import xml.etree.ElementTree as ET

import pytest

from repro.data import regions, streets
from repro.geometry import Rect
from repro.viz import (SvgCanvas, render_dataset, render_join,
                       render_records, render_tree)
from tests.conftest import build_rstar, make_rects

SVG_NS = "{http://www.w3.org/2000/svg}"


def parse(path):
    return ET.parse(path).getroot()


class TestCanvas:
    def test_valid_svg_document(self, tmp_path):
        canvas = SvgCanvas(Rect(0, 0, 100, 100), width=400)
        canvas.rect(Rect(10, 10, 20, 20))
        canvas.circle(50, 50)
        path = str(tmp_path / "c.svg")
        canvas.save(path)
        root = parse(path)
        assert root.tag == f"{SVG_NS}svg"
        assert root.get("width") == "400"
        # background + rect + circle
        assert len(list(root)) == 3

    def test_aspect_ratio_preserved(self):
        canvas = SvgCanvas(Rect(0, 0, 200, 100), width=400)
        assert canvas.height == 200

    def test_y_axis_flipped(self, tmp_path):
        canvas = SvgCanvas(Rect(0, 0, 100, 100), width=100)
        canvas.circle(0, 0, radius=1)     # world origin: bottom-left
        path = str(tmp_path / "flip.svg")
        canvas.save(path)
        circle = parse(path).find(f"{SVG_NS}circle")
        assert float(circle.get("cy")) == 100.0   # bottom of the image

    def test_degenerate_world_padded(self):
        canvas = SvgCanvas(Rect(5, 5, 5, 5), width=100)
        assert canvas.world.width > 0

    def test_title_escaped(self, tmp_path):
        canvas = SvgCanvas(Rect(0, 0, 10, 10))
        canvas.rect(Rect(1, 1, 2, 2), title="<&>")
        path = str(tmp_path / "esc.svg")
        canvas.save(path)
        title = parse(path).find(f"{SVG_NS}rect/{SVG_NS}title")
        assert title.text == "<&>"


class TestRenderers:
    def test_render_records(self, tmp_path):
        records = make_rects(50, seed=701)
        path = str(tmp_path / "records.svg")
        canvas = render_records(records, path)
        root = parse(path)
        rects = root.findall(f"{SVG_NS}rect")
        assert len(rects) == 51     # 50 records + background

    def test_render_dataset_lines_and_regions(self, tmp_path):
        line_path = str(tmp_path / "lines.svg")
        render_dataset(streets(40, seed=1), line_path)
        assert len(parse(line_path).findall(f"{SVG_NS}polyline")) == 40

        region_path = str(tmp_path / "regions.svg")
        render_dataset(regions(25, seed=2), region_path)
        assert len(parse(region_path).findall(f"{SVG_NS}polygon")) == 25

    def test_render_tree_levels(self, tmp_path):
        tree = build_rstar(make_rects(400, seed=702), page_size=256)
        path = str(tmp_path / "tree.svg")
        render_tree(tree, path)
        rects = parse(path).findall(f"{SVG_NS}rect")
        # background + every entry of every node.
        total_entries = sum(len(n.entries) for n in tree.iter_nodes())
        assert len(rects) == total_entries + 1

    def test_render_tree_level_filter(self, tmp_path):
        tree = build_rstar(make_rects(400, seed=703), page_size=256)
        path = str(tmp_path / "dirs.svg")
        render_tree(tree, path, max_level=0)
        rects = parse(path).findall(f"{SVG_NS}rect")
        assert len(rects) == 400 + 1    # only the data rectangles

    def test_render_join_highlights_pairs(self, tmp_path):
        left = make_rects(30, seed=704, max_extent=100.0)
        right = make_rects(30, seed=705, max_extent=100.0)
        from repro.core import nested_loop_join
        pairs = nested_loop_join(left, right).pairs
        assert pairs
        path = str(tmp_path / "join.svg")
        render_join(left, right, pairs, path)
        rects = parse(path).findall(f"{SVG_NS}rect")
        assert len(rects) == 1 + 30 + 30 + len(pairs)

    def test_empty_inputs_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            render_records([], str(tmp_path / "e.svg"))
        from repro.rtree import RStarTree, RTreeParams
        with pytest.raises(ValueError):
            render_tree(RStarTree(RTreeParams.from_page_size(1024)),
                        str(tmp_path / "t.svg"))
