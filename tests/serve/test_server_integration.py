"""End-to-end tests: a real TCP server under concurrent clients.

The acceptance checklist of the serving layer lives here:

* eight concurrent socket clients mixing joins, window queries, and
  inserts — every response identical to what the library computes
  directly;
* zero stale cache hits across inserts (each client proves its own
  insert is visible to its very next window query);
* at least one admission-control shed under a 1-worker/1-slot server;
* ``serve.*`` metrics visible in ``repro report`` output for a trace
  written from the server's observability handle.
"""

import random
import threading

import pytest

from repro.cli import main
from repro.core import JoinSpec
from repro.db import SpatialDatabase
from repro.geometry import Rect
from repro.obs import write_trace
from repro.serve import (QueryService, SpatialQueryServer,
                         TCPServiceClient)

CLIENTS = 8
ROUNDS = 3


def build_db(n=150, seed=29):
    db = SpatialDatabase(page_size=1024)
    rng = random.Random(seed)
    for name in ("streets", "rivers"):
        relation = db.create_relation(name)
        for _ in range(n):
            x, y = rng.uniform(0, 500), rng.uniform(0, 500)
            relation.insert(Rect(x, y, x + rng.uniform(1, 25),
                                 y + rng.uniform(1, 25)))
    return db


@pytest.fixture
def served():
    db = build_db()
    service = QueryService(db, workers=4, queue_depth=64,
                           default_timeout=30.0)
    server = SpatialQueryServer(service, host="127.0.0.1", port=0)
    host, port = server.start()
    yield db, service, host, port
    server.shutdown()


def test_concurrent_clients_mixed_workload(served, tmp_path, capsys):
    db, service, host, port = served
    failures = []
    inserted = [[] for _ in range(CLIENTS)]

    def region_of(i, upto):
        """The window rect of client *i*'s private insert region."""
        base = 1000.0 + 50.0 * i
        return [base, base, base + 40.0, base + 40.0]

    def workload(i):
        try:
            with TCPServiceClient(host, port) as client:
                for r in range(ROUNDS):
                    # A shared join (cacheable across clients) and a
                    # per-client variant (cache diversity).
                    shared = client.call("join", left="streets",
                                         right="rivers")
                    varied = client.call("join", left="streets",
                                         right="rivers",
                                         buffer_kb=64.0 * (i % 4 + 1))
                    if shared["pairs"] != varied["pairs"]:
                        failures.append(
                            f"client {i}: buffer size changed the "
                            f"join result")
                    # Insert into a region only this client touches,
                    # then prove the very next window query sees it —
                    # a stale cache hit would miss the new object.
                    base = 1000.0 + 50.0 * i
                    geometry = {"kind": "rect",
                                "coords": [base + r, base + r,
                                           base + r + 1.0,
                                           base + r + 1.0]}
                    oid = client.call("insert", relation="streets",
                                      geometry=geometry)["oid"]
                    inserted[i].append(oid)
                    window = client.call("window", relation="streets",
                                         window=region_of(i, r))
                    if sorted(window["refs"]) != sorted(inserted[i]):
                        failures.append(
                            f"client {i} round {r}: window saw "
                            f"{window['refs']}, expected "
                            f"{inserted[i]} (stale cache?)")
        except Exception as exc:  # noqa: BLE001 — reported at the end
            failures.append(f"client {i}: {type(exc).__name__}: {exc}")

    threads = [threading.Thread(target=workload, args=(i,))
               for i in range(CLIENTS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert failures == []

    # Quiesced: served results must equal direct library calls.
    with TCPServiceClient(host, port) as client:
        served_join = client.call("join", left="streets",
                                  right="rivers")
        served_window = client.call("window", relation="streets",
                                    window=[0, 0, 500, 500])
    direct_join = db.join("streets", "rivers",
                          spec=JoinSpec(algorithm="sj4",
                                        buffer_kb=128.0,
                                        sort_mode="on_read"))
    assert [tuple(p) for p in served_join["pairs"]] == \
        sorted(direct_join.pairs)
    direct_window = db.relation("streets").window(Rect(0, 0, 500, 500))
    assert served_window["refs"] == sorted(direct_window)

    # The workload's cache behaviour, in numbers: hits happened, and
    # every hit was consistent (asserted above).
    counters = service.obs.metrics.counters
    assert counters["serve.cache.hits"] > 0
    assert counters["serve.requests"] >= CLIENTS * ROUNDS * 4

    # serve.* metrics flow through the standard trace/report pipeline.
    trace = str(tmp_path / "serve.jsonl")
    write_trace(trace, service.obs, meta={"mode": "test"})
    assert main(["report", trace]) == 0
    out = capsys.readouterr().out
    assert "serve.requests" in out
    assert "serve.cache.hits" in out
    assert "serve.time_ms" in out


def test_admission_control_sheds_over_tcp():
    db = build_db(n=20)
    service = QueryService(db, workers=1, queue_depth=1,
                           default_timeout=30.0)
    release = threading.Event()
    started = threading.Event()

    def slow(request, deadline):
        started.set()
        release.wait(15)
        return "done"

    service.register_op("slow", slow)
    server = SpatialQueryServer(service, host="127.0.0.1", port=0)
    host, port = server.start()
    try:
        running = TCPServiceClient(host, port)
        queued = TCPServiceClient(host, port)
        shed = TCPServiceClient(host, port)
        running.send("slow")
        assert started.wait(10)          # the worker is now occupied
        queued.send("slow")
        for _ in range(500):             # … and the single slot full
            if service.scheduler.pending >= 1:
                break
            threading.Event().wait(0.01)
        assert service.scheduler.pending >= 1
        response = shed.request("slow")
        assert response["ok"] is False
        assert response["error"]["code"] == "overloaded"
        release.set()
        assert running.recv()["result"] == "done"
        assert queued.recv()["result"] == "done"
        assert service.obs.metrics.counters["serve.shed"] >= 1
        for client in (running, queued, shed):
            client.close()
    finally:
        release.set()
        server.shutdown()


def test_pipelined_requests_come_back_in_order(served):
    _, _, host, port = served
    with TCPServiceClient(host, port) as client:
        ids = [client.send("ping") for _ in range(10)]
        responses = [client.recv() for _ in range(10)]
    assert [r["id"] for r in responses] == ids
    assert all(r["result"] == "pong" for r in responses)


def test_malformed_line_gets_an_error_response(served):
    import socket
    _, _, host, port = served
    with socket.create_connection((host, port), timeout=10) as sock:
        sock.sendall(b"this is not json\n")
        with sock.makefile("rb") as rfile:
            import json
            response = json.loads(rfile.readline())
    assert response["ok"] is False
    assert response["error"]["code"] == "bad_request"
