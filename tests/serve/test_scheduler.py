"""Tests for the admission-controlled worker-pool scheduler."""

import threading
import time

import pytest

from repro.errors import OverloadedError, QueryTimeout
from repro.obs import Observability
from repro.serve import RequestScheduler
from repro.storage.faults import TransientIOError


@pytest.fixture
def obs():
    return Observability()


def test_submit_runs_and_returns_result(obs):
    scheduler = RequestScheduler(workers=2, obs=obs)
    try:
        assert scheduler.submit(lambda: 41 + 1).result(timeout=5) == 42
    finally:
        scheduler.shutdown()


def test_exceptions_propagate_through_the_future(obs):
    scheduler = RequestScheduler(workers=1, obs=obs)
    try:
        future = scheduler.submit(lambda: 1 / 0)
        with pytest.raises(ZeroDivisionError):
            future.result(timeout=5)
    finally:
        scheduler.shutdown()


def test_full_queue_sheds_with_overloaded_error(obs):
    scheduler = RequestScheduler(workers=1, queue_depth=1, obs=obs)
    release = threading.Event()
    started = threading.Event()
    try:
        blocker = scheduler.submit(
            lambda: started.set() or release.wait(5))
        assert started.wait(5)          # worker is now busy
        queued = scheduler.submit(lambda: "queued")
        with pytest.raises(OverloadedError):
            scheduler.submit(lambda: "shed")
        assert obs.metrics.counters["serve.shed"] == 1
        release.set()
        assert queued.result(timeout=5) == "queued"
        assert blocker.result(timeout=5)
    finally:
        release.set()
        scheduler.shutdown()


def test_expired_deadline_fails_without_executing(obs):
    scheduler = RequestScheduler(workers=1, queue_depth=4, obs=obs)
    release = threading.Event()
    started = threading.Event()
    ran = []
    try:
        scheduler.submit(lambda: started.set() or release.wait(5))
        assert started.wait(5)
        # Enqueued with an already-expired deadline: by the time the
        # worker frees up it must be failed, not run.
        doomed = scheduler.submit(lambda: ran.append(1),
                                  deadline=time.perf_counter() - 1.0)
        release.set()
        with pytest.raises(QueryTimeout):
            doomed.result(timeout=5)
        assert ran == []
        assert obs.metrics.counters["serve.deadline_expired"] == 1
    finally:
        release.set()
        scheduler.shutdown()


def test_transient_failures_are_retried(obs):
    scheduler = RequestScheduler(workers=1, max_retries=2, obs=obs)
    attempts = []

    def flaky():
        attempts.append(1)
        if len(attempts) < 3:
            raise TransientIOError("blip")
        return "ok"

    try:
        assert scheduler.submit(flaky).result(timeout=5) == "ok"
        assert len(attempts) == 3
        assert obs.metrics.counters["serve.retries"] == 2
    finally:
        scheduler.shutdown()


def test_retries_exhausted_surfaces_the_error(obs):
    scheduler = RequestScheduler(workers=1, max_retries=1, obs=obs)

    def always_flaky():
        raise TransientIOError("still down")

    try:
        future = scheduler.submit(always_flaky)
        with pytest.raises(TransientIOError):
            future.result(timeout=5)
    finally:
        scheduler.shutdown()


def test_non_retryable_errors_are_not_retried(obs):
    scheduler = RequestScheduler(workers=1, max_retries=3, obs=obs)
    attempts = []

    def broken():
        attempts.append(1)
        raise ValueError("bad")

    try:
        with pytest.raises(ValueError):
            scheduler.submit(broken).result(timeout=5)
        assert len(attempts) == 1
    finally:
        scheduler.shutdown()


def test_queue_metrics_are_recorded(obs):
    scheduler = RequestScheduler(workers=2, obs=obs)
    try:
        for _ in range(8):
            scheduler.submit(lambda: None).result(timeout=5)
        histograms = obs.metrics.histograms
        assert histograms["serve.wait_ms"].count == 8
        assert histograms["serve.exec_ms"].count == 8
        assert "serve.queue_depth" in obs.metrics.gauges
    finally:
        scheduler.shutdown()


def test_shutdown_rejects_new_work(obs):
    scheduler = RequestScheduler(workers=1, obs=obs)
    scheduler.shutdown()
    with pytest.raises(RuntimeError):
        scheduler.submit(lambda: 1)


def test_invalid_construction_rejected():
    with pytest.raises(ValueError):
        RequestScheduler(workers=0)
    with pytest.raises(ValueError):
        RequestScheduler(queue_depth=0)
    with pytest.raises(ValueError):
        RequestScheduler(max_retries=-1)
