"""Tests for the epoch-keyed LRU result cache."""

import pytest

from repro.serve import ResultCache, normalized_key


class TestNormalizedKey:
    def test_param_order_is_canonical(self):
        a = normalized_key("join", {"left": "r", "right": "s"},
                           [("r", 1), ("s", 2)], 0)
        b = normalized_key("join", {"right": "s", "left": "r"},
                           [("r", 1), ("s", 2)], 0)
        assert a == b

    def test_epochs_change_the_key(self):
        base = normalized_key("join", {"left": "r"}, [("r", 1)], 0)
        assert normalized_key("join", {"left": "r"}, [("r", 2)], 0) \
            != base
        assert normalized_key("join", {"left": "r"}, [("r", 1)], 1) \
            != base

    def test_op_and_params_change_the_key(self):
        base = normalized_key("join", {"left": "r"}, [("r", 1)], 0)
        assert normalized_key("window", {"left": "r"}, [("r", 1)], 0) \
            != base
        assert normalized_key("join", {"left": "q"}, [("r", 1)], 0) \
            != base


class TestLRU:
    def test_get_put_roundtrip(self):
        cache = ResultCache(max_entries=4, max_bytes=1 << 20)
        assert cache.get("k") is None
        assert cache.put("k", {"pairs": [1, 2]}, nbytes=10)
        assert cache.get("k") == {"pairs": [1, 2]}
        assert cache.hits == 1 and cache.misses == 1

    def test_entry_capacity_evicts_lru(self):
        cache = ResultCache(max_entries=2, max_bytes=1 << 20)
        cache.put("a", 1, nbytes=1)
        cache.put("b", 2, nbytes=1)
        cache.get("a")                 # refresh: b is now the LRU
        cache.put("c", 3, nbytes=1)
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.evictions == 1

    def test_byte_capacity_evicts(self):
        cache = ResultCache(max_entries=100, max_bytes=100)
        cache.put("a", "x", nbytes=60)
        cache.put("b", "y", nbytes=60)
        assert cache.get("a") is None
        assert cache.get("b") == "y"
        assert cache.bytes == 60

    def test_oversized_payload_not_admitted(self):
        cache = ResultCache(max_entries=10, max_bytes=100)
        cache.put("small", "s", nbytes=10)
        assert not cache.put("huge", "h", nbytes=101)
        assert cache.get("small") == "s"    # untouched
        assert cache.get("huge") is None

    def test_replacing_a_key_adjusts_bytes(self):
        cache = ResultCache(max_entries=10, max_bytes=100)
        cache.put("k", "old", nbytes=80)
        cache.put("k", "new", nbytes=10)
        assert cache.bytes == 10
        assert cache.entries == 1
        assert cache.get("k") == "new"

    def test_default_nbytes_is_json_size(self):
        cache = ResultCache(max_entries=10, max_bytes=1 << 20)
        cache.put("k", {"a": 1})
        assert cache.bytes == len('{"a": 1}')

    def test_clear(self):
        cache = ResultCache()
        cache.put("k", 1, nbytes=1)
        cache.clear()
        assert cache.entries == 0 and cache.bytes == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(max_entries=-1)

    def test_zero_entries_disables_cache(self):
        cache = ResultCache(max_entries=0, max_bytes=100)
        assert not cache.put("k", 1, nbytes=1)
        assert cache.get("k") is None
