"""MVCC behaviour of the QueryService: the base cache level, the
background rebuilder, lock-wait histograms, and reader/writer
concurrency (no torn reads, no blocking on rebuilds)."""

import random
import threading
import time

import pytest

from repro.db import SpatialDatabase
from repro.geometry import Rect
from repro.serve import QueryService, ServiceClient


def build_db(n=120, seed=11):
    db = SpatialDatabase(page_size=1024)
    rng = random.Random(seed)
    for name in ("streets", "rivers"):
        relation = db.create_relation(name)
        for _ in range(n):
            x, y = rng.uniform(0, 500), rng.uniform(0, 500)
            relation.insert(Rect(x, y, x + rng.uniform(1, 25),
                                 y + rng.uniform(1, 25)))
    return db


def make_service(**kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("default_timeout", 30.0)
    kwargs.setdefault("rebuild_threshold", None)
    return QueryService(build_db(), **kwargs)


def rect_json(x, y, w=5.0, h=5.0):
    return {"kind": "rect", "coords": [x, y, x + w, y + h]}


class TestBaseCacheLevel:
    def test_write_leaves_base_entry_alive(self):
        service = make_service()
        client = ServiceClient(service)
        try:
            window = [0, 0, 250, 250]
            client.window("streets", window)          # prime both levels
            client.insert("streets", rect_json(400, 400))
            counters = service.obs.metrics.counters
            base_before = counters.get("serve.cache.base_hits", 0)
            after = client.request("window", relation="streets",
                                   window=window)
            counters = service.obs.metrics.counters
            # Full-key entry died with the epoch; the base entry served.
            assert after["cached"] is False
            assert counters["serve.cache.base_hits"] == base_before + 1
        finally:
            service.close()

    def test_overlay_result_is_correct_after_write(self):
        service = make_service()
        client = ServiceClient(service)
        try:
            window = [0, 0, 250, 250]
            before = client.window("streets", window)
            inserted = client.insert("streets", rect_json(100, 100))
            deleted_oid = before["refs"][0]
            client.delete("streets", deleted_oid)
            after = client.window("streets", window)
            expected = sorted(set(before["refs"]) - {deleted_oid}
                              | {inserted["oid"]})
            assert after["refs"] == expected
            # Parity with the library path, which shares no cache.
            direct = service.db.relation("streets").window(
                Rect(0, 0, 250, 250))
            assert after["refs"] == sorted(direct)
        finally:
            service.close()

    def test_join_replays_overlay_on_base_hit(self):
        service = make_service()
        client = ServiceClient(service)
        try:
            first = client.join("streets", "rivers")
            client.insert("streets", rect_json(10, 10, 480, 480))
            counters = service.obs.metrics.counters
            base_before = counters.get("serve.cache.base_hits", 0)
            second = client.join("streets", "rivers")
            assert service.obs.metrics.counters[
                "serve.cache.base_hits"] > base_before
            assert len(second["pairs"]) > len(first["pairs"])
        finally:
            service.close()

    def test_rebuild_invalidates_base_level_only(self):
        service = make_service()
        client = ServiceClient(service)
        try:
            window = [0, 0, 250, 250]
            client.insert("streets", rect_json(60, 60))
            primed = client.window("streets", window)
            relation = service.db.relation("streets")
            epoch = relation.epoch
            assert service.force_rebuild() == 1
            assert relation.epoch == epoch          # data unchanged
            # Same epoch: the full-level key is still valid and serves.
            again = client.request("window", relation="streets",
                                   window=window)
            assert again["cached"] is True
            assert again["result"]["refs"] == primed["refs"]
        finally:
            service.close()


class TestRebuilder:
    def test_threshold_triggers_background_merge(self):
        service = make_service(rebuild_threshold=5)
        client = ServiceClient(service)
        try:
            for i in range(6):
                client.insert("streets", rect_json(10 * i, 10 * i))
            relation = service.db.relation("streets")
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if service.rebuilds >= 1 \
                        and relation.delta_ops_pending == 0:
                    break
                time.sleep(0.02)
            assert service.rebuilds >= 1
            assert relation.delta_ops_pending == 0
            assert service.obs.metrics.counters["serve.rebuilds"] >= 1
        finally:
            service.close()

    def test_interval_triggers_background_merge(self):
        service = make_service(rebuild_every=0.05)
        client = ServiceClient(service)
        try:
            client.insert("rivers", rect_json(1, 1))
            relation = service.db.relation("rivers")
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if relation.delta_ops_pending == 0:
                    break
                time.sleep(0.02)
            assert relation.delta_ops_pending == 0
        finally:
            service.close()

    def test_force_rebuild_counts_relations(self):
        service = make_service()
        client = ServiceClient(service)
        try:
            assert service.force_rebuild() == 0     # nothing pending
            client.insert("streets", rect_json(0, 0))
            client.insert("rivers", rect_json(5, 5))
            assert service.force_rebuild() == 2
            snapshot = service.metrics_snapshot()
            assert snapshot["ingest"]["mode"] == "delta"
            assert snapshot["ingest"]["pending_delta_ops"] == 0
            assert snapshot["ingest"]["rebuilds"] == 2
        finally:
            service.close()


class TestLockHistograms:
    def test_stats_carries_lock_wait_sections(self):
        service = make_service()
        client = ServiceClient(service)
        try:
            client.insert("streets", rect_json(0, 0))   # write lock
            stats = client.call("stats")
            waits = stats["lock_wait_ms"]
            assert "write" in waits
            assert waits["write"]["count"] >= 1
            assert waits["write"]["p95"] >= 0.0
        finally:
            service.close()

    def test_mvcc_reads_skip_the_read_lock(self):
        service = make_service()
        client = ServiceClient(service)
        try:
            client.window("streets", [0, 0, 100, 100])
            stats = client.call("stats")
            # Snapshot reads never acquire the service lock, so the
            # read-wait histogram stays empty under pure MVCC reads.
            assert "read" not in stats.get("lock_wait_ms", {})
        finally:
            service.close()

    def test_direct_mode_reads_time_the_read_lock(self):
        service = QueryService(build_db(), workers=2, ingest="direct",
                               default_timeout=30.0)
        client = ServiceClient(service)
        try:
            client.window("streets", [0, 0, 100, 100])
            stats = client.call("stats")
            assert stats["lock_wait_ms"]["read"]["count"] >= 1
        finally:
            service.close()


class TestConcurrency:
    def test_readers_never_observe_torn_writes(self):
        """Writers insert/delete concurrently with window readers; any
        oid a reader lists must resolve to a geometry (an insert is
        visible atomically or not at all), and no request may error."""
        service = make_service(workers=4)
        try:
            stop = threading.Event()
            failures = []

            def writer():
                client = ServiceClient(service)
                rng = random.Random(99)
                mine = []
                while not stop.is_set():
                    if mine and rng.random() < 0.4:
                        oid = mine.pop(rng.randrange(len(mine)))
                        response = client.request(
                            "delete", relation="streets", oid=oid)
                    else:
                        response = client.request(
                            "insert", relation="streets",
                            geometry=rect_json(rng.uniform(0, 490),
                                               rng.uniform(0, 490)))
                        if response.get("ok"):
                            mine.append(response["result"]["oid"])
                    if not response.get("ok"):
                        failures.append(response)
                        return

            def reader():
                client = ServiceClient(service)
                while not stop.is_set():
                    listed = client.request("window",
                                            relation="streets",
                                            window=[0, 0, 500, 500])
                    if not listed.get("ok"):
                        failures.append(listed)
                        return
                    refs = listed["result"]["refs"]
                    if refs != sorted(refs):
                        failures.append({"unsorted": refs})
                        return
                    for oid in refs[:3] + refs[-3:]:
                        got = client.request("get", relation="streets",
                                             oid=oid)
                        # A concurrent delete may legitimately remove
                        # the oid between the two requests; anything
                        # else is a torn read.
                        if not got.get("ok") and \
                                got["error"]["code"] != "catalog":
                            failures.append(got)
                            return

            threads = [threading.Thread(target=writer)] + \
                [threading.Thread(target=reader) for _ in range(3)]
            for thread in threads:
                thread.start()
            time.sleep(1.0)
            stop.set()
            for thread in threads:
                thread.join(10.0)
            assert not failures, failures[:3]
        finally:
            service.close()

    def test_reads_do_not_block_across_a_slow_rebuild(self):
        """The expensive merge phase holds no lock: reads issued while
        a rebuild is bulk-loading must complete well before it does."""
        service = make_service()
        client = ServiceClient(service)
        try:
            client.insert("streets", rect_json(3, 3))
            relation = service.db.relation("streets")
            real_build = relation.build_merged
            merging = threading.Event()

            def slow_build(fill=0.9):
                merging.set()
                time.sleep(0.8)
                return real_build(fill=fill)

            relation.build_merged = slow_build
            rebuilt = threading.Thread(target=service.force_rebuild)
            rebuilt.start()
            assert merging.wait(5.0)
            started = time.perf_counter()
            response = client.request("window", relation="streets",
                                      window=[0, 0, 100, 100])
            elapsed = time.perf_counter() - started
            rebuilt.join(10.0)
            assert response["ok"]
            assert elapsed < 0.5, (
                f"read blocked {elapsed:.2f}s behind the rebuild")
        finally:
            service.close()

    def test_reads_during_rebuild_see_consistent_data(self):
        service = make_service(workers=4)
        client = ServiceClient(service)
        try:
            inserted = client.insert("streets", rect_json(200, 200))
            before = client.window("streets", [0, 0, 500, 500])
            stop = threading.Event()
            failures = []

            def churn():
                churner = ServiceClient(service)
                while not stop.is_set():
                    listed = churner.request(
                        "window", relation="streets",
                        window=[0, 0, 500, 500])
                    if not listed.get("ok") or \
                            listed["result"]["refs"] != before["refs"]:
                        failures.append(listed)
                        return

            readers = [threading.Thread(target=churn)
                       for _ in range(3)]
            for thread in readers:
                thread.start()
            # Feed each rebuild a pending delta that never intersects
            # the queried window: the visible result must not flicker
            # while the base tree is swapped underneath it.
            for i in range(5):
                added = client.request(
                    "insert", relation="streets",
                    geometry=rect_json(600 + i, 600 + i))
                assert added["ok"]
                service.force_rebuild()
                client.delete("streets", added["result"]["oid"])
            stop.set()
            for thread in readers:
                thread.join(10.0)
            assert not failures, failures[:2]
            assert inserted["oid"] in before["refs"]
        finally:
            service.close()
