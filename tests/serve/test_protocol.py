"""Tests for the line-oriented JSON wire protocol."""

import pytest

from repro.errors import (CatalogError, OverloadedError, QueryTimeout,
                          ReproError)
from repro.geometry import Polygon, Polyline, Rect
from repro.serve import (ProtocolError, decode_request, encode_line,
                         error_code_for, error_response,
                         geometry_from_json, geometry_to_json,
                         ok_response)


class TestEnvelopes:
    def test_request_roundtrip(self):
        line = encode_line({"id": 7, "op": "ping"})
        assert line.endswith(b"\n")
        assert decode_request(line) == {"id": 7, "op": "ping"}

    def test_decode_accepts_str_and_bytes(self):
        assert decode_request('{"op": "ping"}') == {"op": "ping"}
        assert decode_request(b'{"op": "ping"}') == {"op": "ping"}

    @pytest.mark.parametrize("bad", [
        "not json",
        "[1, 2]",
        '{"no": "op"}',
        '{"op": 7}',
        '{"op": ""}',
    ])
    def test_bad_requests_rejected(self, bad):
        with pytest.raises(ProtocolError):
            decode_request(bad)

    def test_non_utf8_rejected(self):
        with pytest.raises(ProtocolError):
            decode_request(b'\xff\xfe{"op": "ping"}')

    def test_ok_response_shape(self):
        response = ok_response(3, {"count": 1}, cached=True)
        assert response == {"id": 3, "ok": True,
                            "result": {"count": 1}, "cached": True}

    def test_error_response_shape(self):
        response = error_response(None, "catalog", "no such relation")
        assert response == {"id": None, "ok": False,
                            "error": {"code": "catalog",
                                      "message": "no such relation"}}


class TestErrorCodes:
    def test_repro_errors_carry_their_code(self):
        assert error_code_for(CatalogError("x")) == "catalog"
        assert error_code_for(QueryTimeout("x")) == "timeout"
        assert error_code_for(OverloadedError("x")) == "overloaded"
        assert error_code_for(ProtocolError("x")) == "bad_request"
        assert error_code_for(ReproError("x")) == "internal"

    def test_builtin_timeout_maps_to_timeout(self):
        assert error_code_for(TimeoutError()) == "timeout"

    def test_everything_else_is_internal(self):
        assert error_code_for(RuntimeError("boom")) == "internal"


class TestGeometryCodecs:
    @pytest.mark.parametrize("geometry", [
        Rect(0.0, 1.0, 2.0, 3.0),
        Polyline([(0.0, 0.0), (5.0, 5.0), (10.0, 0.0)]),
        Polygon([(0.0, 0.0), (10.0, 0.0), (5.0, 8.0)]),
    ])
    def test_roundtrip(self, geometry):
        decoded = geometry_from_json(geometry_to_json(geometry))
        assert type(decoded) is type(geometry)
        assert decoded == geometry

    @pytest.mark.parametrize("bad", [
        "rect",
        {"kind": "rect", "coords": [1, 2, 3]},
        {"kind": "rect", "coords": [1, 2, 3, True]},
        {"kind": "polyline", "coords": [[1, 2], [3]]},
        {"kind": "circle", "coords": [0, 0, 1]},
        {"coords": [0, 0, 1, 1]},
    ])
    def test_bad_geometry_rejected(self, bad):
        with pytest.raises(ProtocolError):
            geometry_from_json(bad)
