"""Black-box MVCC acceptance over TCP: concurrent clients interleave
writes with joins and window queries while background rebuilds are
forced mid-stream.  Zero stale reads (every response reflects all of
that client's acknowledged writes) and a nonzero cache hit count —
the delta path keeps the cache useful across writes instead of
invalidating it wholesale."""

import random
import threading

import pytest

from repro.core import JoinSpec
from repro.db import SpatialDatabase
from repro.geometry import Rect
from repro.serve import (QueryService, SpatialQueryServer,
                         TCPServiceClient)

CLIENTS = 4
ROUNDS = 6


def build_db(n=120, seed=37):
    db = SpatialDatabase(page_size=1024)
    rng = random.Random(seed)
    for name in ("streets", "rivers"):
        relation = db.create_relation(name)
        for _ in range(n):
            x, y = rng.uniform(0, 500), rng.uniform(0, 500)
            relation.insert(Rect(x, y, x + rng.uniform(1, 25),
                                 y + rng.uniform(1, 25)))
    return db


@pytest.fixture
def served():
    db = build_db()
    service = QueryService(db, workers=4, queue_depth=64,
                           default_timeout=30.0,
                           rebuild_threshold=None)
    server = SpatialQueryServer(service, host="127.0.0.1", port=0)
    host, port = server.start()
    yield db, service, host, port
    server.shutdown()


def test_writes_joins_and_rebuilds_interleaved(served):
    db, service, host, port = served
    failures = []
    barrier = threading.Barrier(CLIENTS + 1, timeout=60)

    def workload(i):
        """Each client owns a private region: inserts there, checks
        its very next window query lists exactly its live objects,
        and joins the shared relations every round."""
        base = 1000.0 + 60.0 * i
        region = [base, base, base + 50.0, base + 50.0]
        mine = []
        try:
            with TCPServiceClient(host, port) as client:
                for r in range(ROUNDS):
                    barrier.wait()      # lockstep with forced rebuilds
                    oid = client.call(
                        "insert", relation="streets",
                        geometry={"kind": "rect",
                                  "coords": [base + r, base + r,
                                             base + r + 2.0,
                                             base + r + 2.0]})["oid"]
                    mine.append(oid)
                    if len(mine) > 2:
                        client.call("delete", relation="streets",
                                    oid=mine.pop(0))
                    listed = client.call("window", relation="streets",
                                         window=region)
                    if sorted(listed["refs"]) != sorted(mine):
                        failures.append(
                            f"client {i} round {r}: stale read "
                            f"{listed['refs']} != {mine}")
                    joined = client.call("join", left="streets",
                                         right="rivers")
                    if joined["count"] != len(joined["pairs"]):
                        failures.append(
                            f"client {i} round {r}: join count "
                            f"mismatch")
        except Exception as exc:  # noqa: BLE001 — reported at the end
            failures.append(f"client {i}: {type(exc).__name__}: {exc}")
            # Unblock everyone else rather than hanging the barrier.
            barrier.abort()

    threads = [threading.Thread(target=workload, args=(i,))
               for i in range(CLIENTS)]
    for thread in threads:
        thread.start()
    # Force a background-style rebuild between every round, exactly
    # what the rebuilder thread does, but at adversarial times.
    rebuilds = 0
    try:
        for _ in range(ROUNDS):
            barrier.wait()
            rebuilds += service.force_rebuild()
    except threading.BrokenBarrierError:
        pass
    for thread in threads:
        thread.join(timeout=120)
    assert failures == []
    assert rebuilds > 0

    # Quiesced parity: the served view equals the library's.
    with TCPServiceClient(host, port) as client:
        served_join = client.call("join", left="streets",
                                  right="rivers")
        served_window = client.call("window", relation="streets",
                                    window=[0, 0, 2000, 2000])
    direct = db.join("streets", "rivers",
                     spec=JoinSpec(algorithm="sj4", buffer_kb=128.0,
                                   sort_mode="on_read"))
    assert [tuple(p) for p in served_join["pairs"]] == \
        sorted(direct.pairs)
    assert served_window["refs"] == \
        sorted(db.relation("streets").window(Rect(0, 0, 2000, 2000)))

    # The cache stayed useful across the writes: the shared join is
    # re-served from the full or base level, not recomputed cold
    # every time.
    counters = service.obs.metrics.counters
    hits = counters.get("serve.cache.hits", 0) \
        + counters.get("serve.cache.base_hits", 0)
    assert hits > 0
