"""Durability threaded through the query service."""

from repro.db.durability import DurabilityManager
from repro.serve.service import QueryService


def _rect(coords):
    return {"kind": "rect", "coords": list(coords)}


def _service(data_dir, **kwargs):
    db, manager = DurabilityManager.open(str(data_dir), **kwargs)
    service = QueryService(db, workers=2, durability=manager)
    return service, manager


class TestServiceDurability:
    def test_mutations_reach_the_wal(self, tmp_path):
        service, manager = _service(tmp_path / "data")
        assert service.handle({"id": 1, "op": "create",
                               "relation": "roads"})["ok"]
        response = service.handle({"id": 2, "op": "insert",
                                   "relation": "roads",
                                   "geometry": _rect([0, 0, 1, 1])})
        assert response["ok"], response
        assert manager.wal.appends == 2
        assert manager.applied_lsn == 2
        service.close()

    def test_stats_surface_durability(self, tmp_path):
        service, manager = _service(tmp_path / "data")
        service.handle({"id": 1, "op": "create", "relation": "roads"})
        stats = service.handle({"id": 2, "op": "stats"})
        durability = stats["result"]["durability"]
        assert durability["sync"] == "always"
        assert durability["wal_appends"] == 1
        assert "recovery" in durability
        service.close()

    def test_close_checkpoints(self, tmp_path):
        service, manager = _service(tmp_path / "data",
                                    checkpoint_every=1000)
        service.handle({"id": 1, "op": "create", "relation": "roads"})
        service.handle({"id": 2, "op": "insert", "relation": "roads",
                        "geometry": _rect([0, 0, 1, 1])})
        assert manager.dirty
        service.close()
        assert not manager.dirty
        # A fresh recovery replays nothing: the close checkpointed.
        db, manager2 = DurabilityManager.open(str(tmp_path / "data"))
        assert manager2.recovery.replayed == 0
        assert len(db.relations["roads"]) == 1
        manager2.close()

    def test_acked_writes_survive_abandonment(self, tmp_path):
        service, manager = _service(tmp_path / "data",
                                    checkpoint_every=1000)
        service.handle({"id": 1, "op": "create", "relation": "roads"})
        response = service.handle({"id": 2, "op": "insert",
                                   "relation": "roads",
                                   "geometry": _rect([5, 5, 6, 6])})
        oid = response["result"]["oid"]
        # Simulated hard kill: drop everything without close().
        service.scheduler.shutdown()
        manager.wal._file.close()
        db, manager2 = DurabilityManager.open(str(tmp_path / "data"))
        assert manager2.recovery.replayed == 2
        assert oid in db.relations["roads"].objects
        manager2.close()

    def test_rejected_requests_log_nothing(self, tmp_path):
        service, manager = _service(tmp_path / "data")
        service.handle({"id": 1, "op": "create", "relation": "roads"})
        appends = manager.wal.appends
        # Validation failures must never reach the WAL.
        duplicate = service.handle({"id": 2, "op": "create",
                                    "relation": "roads"})
        assert not duplicate["ok"]
        missing = service.handle({"id": 3, "op": "delete",
                                  "relation": "roads", "oid": 404})
        assert not missing["ok"]
        bad = service.handle({"id": 4, "op": "insert",
                              "relation": "ghost",
                              "geometry": _rect([0, 0, 1, 1])})
        assert not bad["ok"]
        assert manager.wal.appends == appends
        service.close()

    def test_service_without_durability_unchanged(self, tmp_path):
        from repro.db import SpatialDatabase
        service = QueryService(SpatialDatabase(), workers=1)
        assert service.handle({"id": 1, "op": "create",
                               "relation": "r"})["ok"]
        stats = service.handle({"id": 2, "op": "stats"})
        assert "durability" not in stats["result"]
        service.close()
