"""Tests for the QueryService: ops, caching, errors, admission."""

import random
import threading

import pytest

from repro.core import JoinSpec
from repro.db import SpatialDatabase
from repro.geometry import Rect
from repro.serve import QueryService, ServiceClient


def build_db(n=150, seed=11):
    db = SpatialDatabase(page_size=1024)
    rng = random.Random(seed)
    for name in ("streets", "rivers"):
        relation = db.create_relation(name)
        for _ in range(n):
            x, y = rng.uniform(0, 500), rng.uniform(0, 500)
            relation.insert(Rect(x, y, x + rng.uniform(1, 25),
                                 y + rng.uniform(1, 25)))
    return db


@pytest.fixture
def service():
    svc = QueryService(build_db(), workers=2, default_timeout=30.0)
    yield svc
    svc.close()


@pytest.fixture
def client(service):
    return ServiceClient(service)


class TestBasicOps:
    def test_ping(self, client):
        assert client.call("ping") == "pong"

    def test_relations(self, client):
        rows = client.call("relations")
        assert [row["name"] for row in rows] == ["rivers", "streets"]
        assert all(row["objects"] == 150 for row in rows)

    def test_stats(self, client):
        client.call("ping")
        snapshot = client.call("stats")
        assert snapshot["counters"]["serve.requests"] >= 1
        assert set(snapshot["cache"]) == {"entries", "bytes", "hits",
                                          "misses", "evictions",
                                          "hit_rate"}

    def test_stats_cache_hit_rate_and_evictions(self, client):
        params = dict(left="streets", right="rivers", algorithm="sj2")
        client.call("join", **params)      # miss
        client.call("join", **params)      # hit
        snapshot = client.call("stats")
        cache = snapshot["cache"]
        assert cache["hits"] >= 1 and cache["misses"] >= 1
        assert 0.0 < cache["hit_rate"] <= 1.0
        assert cache["hit_rate"] == pytest.approx(
            round(cache["hits"] / (cache["hits"] + cache["misses"]), 4))

    def test_evictions_reach_stats_and_metrics_gauge(self):
        # A one-entry cache: the second distinct cached result evicts
        # the first, and the eviction count must surface both in the
        # stats payload and as the serve.cache.evictions gauge (what
        # repro report renders from a trace).
        svc = QueryService(build_db(), workers=2, cache_entries=1)
        try:
            client = ServiceClient(svc)
            client.window("streets", [0, 0, 100, 100])
            client.window("streets", [0, 0, 200, 200])
            snapshot = client.call("stats")
            assert snapshot["cache"]["evictions"] >= 1
            assert snapshot["gauges"]["serve.cache.evictions"] >= 1
        finally:
            svc.close()

    def test_window_matches_library(self, service, client):
        result = client.window("streets", [0, 0, 250, 250])
        direct = service.db.relation("streets").window(
            Rect(0, 0, 250, 250))
        assert result["refs"] == sorted(direct)
        assert result["count"] == len(direct)

    def test_knn_matches_library(self, service, client):
        result = client.knn("rivers", 250.0, 250.0, k=3)
        direct = service.db.relation("rivers").nearest(250.0, 250.0,
                                                       k=3)
        assert [(r, d) for r, d in result["neighbors"]] == \
            [(r, pytest.approx(d)) for r, d in direct]

    def test_get_roundtrips_geometry(self, client):
        payload = client.call("get", relation="streets", oid=0)
        assert payload["oid"] == 0
        assert payload["geometry"]["kind"] == "rect"

    def test_join_matches_library(self, service, client):
        result = client.join("streets", "rivers")
        direct = service.db.join(
            "streets", "rivers",
            spec=JoinSpec(algorithm="sj4", buffer_kb=128.0,
                          sort_mode="on_read"))
        assert [tuple(p) for p in result["pairs"]] == \
            sorted(direct.pairs)
        assert result["count"] == len(direct.pairs)
        assert result["stats"]["algorithm"] == direct.stats.algorithm

    def test_insert_delete_roundtrip(self, client):
        payload = client.insert("streets",
                                {"kind": "rect",
                                 "coords": [900, 900, 901, 901]})
        oid = payload["oid"]
        got = client.call("get", relation="streets", oid=oid)
        assert got["geometry"]["coords"] == [900, 900, 901, 901]
        client.delete("streets", oid)
        response = client.request("get", relation="streets", oid=oid)
        assert response["error"]["code"] == "catalog"

    def test_create_and_drop(self, client):
        created = client.call("create", relation="lakes")
        assert created["relation"] == "lakes"
        names = [r["name"] for r in client.call("relations")]
        assert "lakes" in names
        dropped = client.call("drop", relation="lakes")
        assert dropped["catalog_epoch"] > created["catalog_epoch"]


class TestCaching:
    def test_repeat_join_is_served_from_cache(self, client):
        first = client.request("join", left="streets", right="rivers")
        second = client.request("join", left="streets", right="rivers")
        assert first["cached"] is False
        assert second["cached"] is True
        assert first["result"] == second["result"]

    def test_envelope_fields_do_not_affect_the_key(self, client):
        client.request("join", left="streets", right="rivers")
        again = client.request("join", left="streets", right="rivers",
                               timeout_ms=9999)
        assert again["cached"] is True

    def test_different_params_miss(self, client):
        client.request("join", left="streets", right="rivers")
        other = client.request("join", left="streets", right="rivers",
                               algorithm="sj1")
        assert other["cached"] is False

    def test_insert_invalidates_join_and_window(self, client):
        client.request("join", left="streets", right="rivers")
        before = client.request("window", relation="streets",
                                window=[400, 400, 500, 500])
        client.insert("streets", {"kind": "rect",
                                  "coords": [450, 450, 460, 460]})
        after_join = client.request("join", left="streets",
                                    right="rivers")
        after_window = client.request("window", relation="streets",
                                      window=[400, 400, 500, 500])
        assert after_join["cached"] is False
        assert after_window["cached"] is False
        # The fresh window result must see the inserted object.
        new_refs = set(after_window["result"]["refs"]) \
            - set(before["result"]["refs"])
        assert len(new_refs) == 1

    def test_mutating_one_relation_keeps_the_other_cached(self, client):
        client.request("window", relation="rivers",
                       window=[0, 0, 100, 100])
        client.insert("streets", {"kind": "rect",
                                  "coords": [1, 1, 2, 2]})
        again = client.request("window", relation="rivers",
                               window=[0, 0, 100, 100])
        assert again["cached"] is True

    def test_drop_create_cycle_cannot_resurrect_results(self, service,
                                                        client):
        client.request("window", relation="streets",
                       window=[0, 0, 500, 500])
        client.call("drop", relation="streets")
        client.call("create", relation="streets")
        # Same name, fresh (empty) relation at epoch 0: the catalog
        # epoch in the key must force a recompute.
        response = client.request("window", relation="streets",
                                  window=[0, 0, 500, 500])
        assert response["cached"] is False
        assert response["result"]["count"] == 0


class TestErrors:
    def test_unknown_op(self, client):
        assert client.request("nope")["error"]["code"] == "bad_request"

    def test_unknown_relation(self, client):
        response = client.request("window", relation="ghost",
                                  window=[0, 0, 1, 1])
        assert response["error"]["code"] == "catalog"

    def test_bad_window(self, client):
        response = client.request("window", relation="streets",
                                  window=[0, 0, 1])
        assert response["error"]["code"] == "bad_request"

    def test_bad_algorithm(self, client):
        response = client.request("join", left="streets",
                                  right="rivers", algorithm="sj9")
        assert response["error"]["code"] == "query"

    def test_bad_timeout(self, client):
        response = client.request("ping")
        assert response["ok"]
        response = client.request("window", relation="streets",
                                  window=[0, 0, 1, 1], timeout_ms=-5)
        assert response["error"]["code"] == "bad_request"

    def test_duplicate_oid(self, client):
        response = client.request(
            "insert", relation="streets", oid=0,
            geometry={"kind": "rect", "coords": [0, 0, 1, 1]})
        assert response["error"]["code"] == "catalog"

    def test_handle_never_raises(self, service):
        response = service.handle({"op": None})
        assert response["ok"] is False
        response = service.handle({})
        assert response["ok"] is False

    def test_errors_are_counted(self, service, client):
        client.request("nope")
        counters = service.obs.metrics.counters
        assert counters["serve.errors"] >= 1
        assert counters["serve.error.bad_request"] >= 1


class TestAdmissionControl:
    def test_full_queue_sheds(self):
        service = QueryService(build_db(n=20), workers=1, queue_depth=1,
                               default_timeout=30.0)
        release = threading.Event()
        started = threading.Event()
        service.register_op(
            "slow", lambda request, deadline:
            started.set() or release.wait(10) or "done")
        responses = {}

        def fire(tag):
            responses[tag] = service.handle({"id": tag, "op": "slow"})

        try:
            first = threading.Thread(target=fire, args=("running",))
            first.start()
            assert started.wait(5)       # worker busy
            second = threading.Thread(target=fire, args=("queued",))
            second.start()
            # Give the queued request time to occupy the single slot.
            for _ in range(100):
                if service.scheduler.pending >= 1:
                    break
                threading.Event().wait(0.01)
            shed = service.handle({"id": "shed", "op": "slow"})
            assert shed["error"]["code"] == "overloaded"
            release.set()
            first.join(5)
            second.join(5)
            assert responses["running"]["ok"]
            assert responses["queued"]["ok"]
            assert service.obs.metrics.counters["serve.shed"] == 1
        finally:
            release.set()
            service.close()

    def test_deadline_expires_queued_request(self):
        service = QueryService(build_db(n=20), workers=1, queue_depth=4,
                               default_timeout=30.0)
        release = threading.Event()
        started = threading.Event()
        service.register_op(
            "slow", lambda request, deadline:
            started.set() or release.wait(10) or "done")
        try:
            blocker = threading.Thread(
                target=service.handle, args=({"op": "slow"},))
            blocker.start()
            assert started.wait(5)
            # 1 ms budget, stuck behind a slow request: must time out.
            response_cell = {}

            def fire():
                response_cell["r"] = service.handle(
                    {"op": "ping2", "timeout_ms": 1})

            service.register_op("ping2",
                                lambda request, deadline: "pong2")
            waiter = threading.Thread(target=fire)
            waiter.start()
            waiter.join(10)
            release.set()
            blocker.join(5)
            assert response_cell["r"]["error"]["code"] == "timeout"
        finally:
            release.set()
            service.close()

    def test_register_op_cannot_override_builtins(self, service):
        with pytest.raises(ValueError):
            service.register_op("ping", lambda request, deadline: "hi")

    def test_registered_op_is_dispatched(self, service, client):
        service.register_op("echo",
                            lambda request, deadline:
                            request.get("payload"))
        assert client.call("echo", payload={"x": 1}) == {"x": 1}


class TestJoinTimeout:
    def test_tiny_budget_times_out_cooperatively(self):
        service = QueryService(build_db(n=400, seed=3), workers=1,
                               default_timeout=30.0)
        client = ServiceClient(service)
        try:
            # 1 microsecond of budget: JoinSpec.timeout trips on the
            # first counted page read inside the worker.
            response = client.request("join", left="streets",
                                      right="rivers",
                                      timeout_ms=0.001)
            assert response["ok"] is False
            assert response["error"]["code"] == "timeout"
        finally:
            service.close()


class TestLatencyAndSlowLog:
    def test_stats_carries_latency_percentiles(self, client):
        for _ in range(5):
            client.call("ping")
        stats = client.call("stats")
        latency = stats["latency_ms"]
        assert set(latency) == {"count", "mean", "p50", "p95", "p99",
                                "max"}
        assert latency["count"] >= 5
        assert 0.0 <= latency["p50"] <= latency["p95"] <= latency["p99"]
        assert latency["p99"] <= latency["max"]

    def test_slow_log_fires_above_threshold(self):
        lines = []
        service = QueryService(build_db(n=20), workers=1,
                               slow_ms=0.0, slow_log=lines.append)
        try:
            service.handle({"op": "ping", "id": 7})
        finally:
            service.close()
        assert len(lines) == 1
        assert "slow request" in lines[0]
        assert "op=ping" in lines[0] and "id=7" in lines[0]
        assert service.obs.metrics.counter("serve.slow_requests") == 1

    def test_slow_log_quiet_below_threshold(self):
        lines = []
        service = QueryService(build_db(n=20), workers=1,
                               slow_ms=1e9, slow_log=lines.append)
        try:
            service.handle({"op": "ping", "id": 1})
        finally:
            service.close()
        assert lines == []
        assert service.obs.metrics.counter("serve.slow_requests") == 0

    def test_slow_log_disabled_by_default(self):
        lines = []
        service = QueryService(build_db(n=20), workers=1,
                               slow_log=lines.append)
        try:
            service.handle({"op": "ping", "id": 1})
        finally:
            service.close()
        assert service.slow_ms is None
        assert lines == []
