"""Tests for the command-line interface (invoked in-process)."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def records_file(tmp_path):
    path = str(tmp_path / "data.rct")
    assert main(["generate", "--kind", "uniform", "-n", "800",
                 "--seed", "3", "-o", path]) == 0
    return path


@pytest.fixture
def tree_file(tmp_path, records_file):
    path = str(tmp_path / "data.rtree")
    assert main(["build", records_file, "-o", path,
                 "--page-size", "1024"]) == 0
    return path


class TestGenerate:
    @pytest.mark.parametrize("kind", ["streets", "rivers", "regions",
                                      "uniform"])
    def test_all_kinds(self, tmp_path, kind, capsys):
        path = str(tmp_path / f"{kind}.rct")
        assert main(["generate", "--kind", kind, "-n", "200",
                     "-o", path]) == 0
        out = capsys.readouterr().out
        assert "200" in out
        from repro.data import load_records
        assert len(load_records(path)) == 200

    def test_negative_n_fails(self, tmp_path):
        assert main(["generate", "--kind", "uniform", "-n", "-5",
                     "-o", str(tmp_path / "x.rct")]) == 1


class TestBuild:
    @pytest.mark.parametrize("variant", ["rstar", "guttman-quadratic",
                                         "guttman-linear", "str",
                                         "hilbert"])
    def test_variants(self, tmp_path, records_file, variant):
        path = str(tmp_path / f"{variant}.rtree")
        assert main(["build", records_file, "-o", path,
                     "--variant", variant]) == 0
        from repro.rtree import load_tree, validate_rtree
        validate_rtree(load_tree(path),
                       check_min_fill=(variant != "str"))

    def test_missing_input_fails(self, tmp_path):
        assert main(["build", str(tmp_path / "missing.rct"),
                     "-o", str(tmp_path / "out.rtree")]) == 1


class TestInfo:
    def test_census_printed(self, tree_file, capsys):
        assert main(["info", tree_file]) == 0
        out = capsys.readouterr().out
        assert "rstar" in out
        assert "M = 51" in out
        assert "data entries       : 800" in out


class TestQuery:
    def test_window(self, tree_file, capsys):
        assert main(["query", tree_file, "--window",
                     "0", "0", "100000", "100000"]) == 0
        captured = capsys.readouterr()
        assert len(captured.out.splitlines()) == 800
        assert "800 matches" in captured.err

    def test_knn(self, tree_file, capsys):
        assert main(["query", tree_file, "--knn",
                     "50000", "50000", "3"]) == 0
        captured = capsys.readouterr()
        assert len(captured.out.splitlines()) == 3

    def test_empty_window(self, tree_file, capsys):
        assert main(["query", tree_file, "--window",
                     "-10", "-10", "-5", "-5"]) == 0
        assert capsys.readouterr().out == ""

    def test_no_tree_and_no_connect_fails(self, capsys):
        assert main(["query", "--window", "0", "0", "1", "1"]) == 1
        assert "rtree file is required" in capsys.readouterr().err

    def test_join_requires_connect(self, tree_file, capsys):
        assert main(["query", tree_file, "--join", "a", "b"]) == 1
        assert "--connect" in capsys.readouterr().err


class TestRemoteQuery:
    @pytest.fixture
    def served(self):
        import random
        from repro.db import SpatialDatabase
        from repro.geometry import Rect
        from repro.serve import QueryService, SpatialQueryServer

        db = SpatialDatabase(page_size=1024)
        rng = random.Random(5)
        for name in ("streets", "rivers"):
            relation = db.create_relation(name)
            for _ in range(120):
                x, y = rng.uniform(0, 400), rng.uniform(0, 400)
                relation.insert(Rect(x, y, x + 10, y + 10))
        service = QueryService(db, workers=2)
        server = SpatialQueryServer(service, host="127.0.0.1", port=0)
        host, port = server.start()
        yield f"{host}:{port}"
        server.shutdown()

    def test_ping(self, served, capsys):
        assert main(["query", "--connect", served, "--ping"]) == 0
        assert "pong" in capsys.readouterr().out

    def test_join_reports_cache_status(self, served, capsys):
        assert main(["query", "--connect", served,
                     "--join", "streets", "rivers"]) == 0
        first = capsys.readouterr()
        assert "cached=false" in first.err
        assert main(["query", "--connect", served,
                     "--join", "streets", "rivers"]) == 0
        second = capsys.readouterr()
        assert "cached=true" in second.err
        assert first.out == second.out

    def test_window_requires_relation(self, served, capsys):
        assert main(["query", "--connect", served,
                     "--window", "0", "0", "1", "1"]) == 1
        assert "--relation" in capsys.readouterr().err

    def test_window_and_knn(self, served, capsys):
        assert main(["query", "--connect", served, "--relation",
                     "streets", "--window", "0", "0", "400", "400"]) \
            == 0
        assert "matches" in capsys.readouterr().err
        assert main(["query", "--connect", served, "--relation",
                     "rivers", "--knn", "200", "200", "3"]) == 0
        assert len(capsys.readouterr().out.splitlines()) == 3

    def test_json_envelope(self, served, capsys):
        assert main(["query", "--connect", served, "--json",
                     "--ping"]) == 0
        envelope = json.loads(capsys.readouterr().out)
        assert envelope["ok"] and envelope["result"] == "pong"

    def test_server_error_is_reported(self, served, capsys):
        assert main(["query", "--connect", served, "--relation",
                     "ghost", "--window", "0", "0", "1", "1"]) == 1
        assert "catalog" in capsys.readouterr().err

    def test_bad_endpoint_fails(self, capsys):
        assert main(["query", "--connect", "nonsense",
                     "--ping"]) == 1
        assert "HOST:PORT" in capsys.readouterr().err


class TestJoin:
    def test_join_text_output(self, tmp_path, tree_file, capsys):
        assert main(["join", tree_file, tree_file,
                     "--algorithm", "sj4"]) == 0
        out = capsys.readouterr().out
        assert "SJ4" in out and "pairs" in out

    def test_join_json_and_pairs_file(self, tmp_path, tree_file,
                                      capsys):
        pairs_path = str(tmp_path / "pairs.tsv")
        assert main(["join", tree_file, tree_file, "--json",
                     "-o", pairs_path]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["algorithm"] == "SJ4"
        assert payload["pairs"] >= 800     # at least the diagonal
        lines = open(pairs_path).read().splitlines()
        assert len(lines) == payload["pairs"]

    def test_join_with_predicate(self, tree_file, capsys):
        assert main(["join", tree_file, tree_file,
                     "--predicate", "contains", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["predicate"] == "contains"
        assert payload["pairs"] >= 800     # self-containment diagonal

    def test_join_with_workers(self, tree_file, capsys):
        assert main(["join", tree_file, tree_file, "--json"]) == 0
        serial = json.loads(capsys.readouterr().out)
        assert main(["join", tree_file, tree_file, "--workers", "2",
                     "--json"]) == 0
        parallel = json.loads(capsys.readouterr().out)
        assert parallel["workers"] == 2
        assert parallel["pairs"] == serial["pairs"]

    def test_join_rejects_bad_workers(self, tree_file):
        assert main(["join", tree_file, tree_file,
                     "--workers", "0"]) == 1

    def test_missing_tree_fails(self, tmp_path, tree_file):
        assert main(["join", tree_file,
                     str(tmp_path / "missing.rtree")]) == 1


class TestBench:
    def test_bench_exhibit(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        monkeypatch.setenv("REPRO_SCALE", "0.004")
        assert main(["bench", "ablation-sweep-crossover"]) == 0
        out = capsys.readouterr().out
        assert "sweep" in out.lower()

    def test_bench_json_output(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        assert main(["bench", "ablation-sweep-crossover",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["exhibit"] == "Ablation: sweep crossover"
        assert payload["rows"]
        assert "512" in payload["data"]


class TestJoinFaultFlags:
    def test_fault_injection_preserves_pairs(self, tree_file, capsys):
        assert main(["join", tree_file, tree_file, "--json"]) == 0
        clean = json.loads(capsys.readouterr().out)
        assert clean["faults_injected"] == 0
        assert main(["join", tree_file, tree_file, "--json",
                     "--fault-read-p", "0.2", "--fault-seed", "7",
                     "--max-retries", "3"]) == 0
        faulty = json.loads(capsys.readouterr().out)
        assert faulty["pairs"] == clean["pairs"]
        assert faulty["faults_injected"] > 0
        assert faulty["read_retries"] > 0

    def test_fault_summary_printed(self, tree_file, capsys):
        assert main(["join", tree_file, tree_file,
                     "--fault-read-p", "0.2", "--fault-seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "faults:" in out
        assert "page retries" in out

    def test_clean_run_omits_fault_summary(self, tree_file, capsys):
        assert main(["join", tree_file, tree_file]) == 0
        assert "faults:" not in capsys.readouterr().out

    def test_rejects_bad_probability(self, tree_file):
        assert main(["join", tree_file, tree_file,
                     "--fault-read-p", "1.5"]) == 1


class TestScrub:
    def _corrupt(self, path):
        import struct
        with open(path, "r+b") as handle:
            handle.seek(4 + 12 + 4)  # store header, magic, version
            (physical,) = struct.unpack("<I", handle.read(4))
            # Flip a byte inside the first node page's body.
            handle.seek(physical + 4 + 4 + 10)
            byte = handle.read(1)
            handle.seek(-1, 1)
            handle.write(bytes([byte[0] ^ 0xFF]))

    def test_clean_tree_scrubs_ok(self, tree_file, capsys):
        assert main(["scrub", tree_file]) == 0
        out = capsys.readouterr().out
        assert "0 damaged" in out
        assert "all checksums verify" in out

    def test_damaged_tree_exits_nonzero(self, tree_file, capsys):
        self._corrupt(tree_file)
        assert main(["scrub", tree_file]) == 1
        assert "checksum mismatch" in capsys.readouterr().out

    def test_repair_produces_loadable_tree(self, tmp_path, tree_file,
                                           capsys):
        self._corrupt(tree_file)
        repaired = str(tmp_path / "repaired.rtree")
        assert main(["scrub", tree_file, "--repair",
                     "-o", repaired]) == 0
        assert "rebuilt" in capsys.readouterr().out
        assert main(["info", repaired]) == 0

    def test_repair_requires_output(self, tree_file):
        assert main(["scrub", tree_file, "--repair"]) == 1

    def test_non_tree_file_fails(self, tmp_path):
        junk = tmp_path / "junk.rtree"
        junk.write_bytes(b"junk" * 64)
        assert main(["scrub", str(junk)]) == 1


class TestTraceAndReport:
    def test_trace_writes_schema_valid_file(self, tmp_path, tree_file,
                                            capsys):
        trace = str(tmp_path / "t.jsonl")
        assert main(["join", tree_file, tree_file,
                     "--algorithm", "sj4", "--trace", trace]) == 0
        err = capsys.readouterr().err
        assert "trace:" in err
        from repro.obs import read_trace
        document = read_trace(trace)          # validates the schema
        assert document.meta["algorithm"] == "SJ4"
        assert document.meta["left"] == tree_file
        assert any(span["name"] == "join" for span in document.spans)

    def test_traced_counters_match_untraced_run(self, tmp_path,
                                                tree_file, capsys):
        assert main(["join", tree_file, tree_file, "--algorithm",
                     "sj4", "--json"]) == 0
        untraced = json.loads(capsys.readouterr().out)
        trace = str(tmp_path / "t.jsonl")
        assert main(["join", tree_file, tree_file, "--algorithm",
                     "sj4", "--json", "--trace", trace]) == 0
        traced = json.loads(capsys.readouterr().out)
        assert traced == untraced
        from repro.obs import read_trace
        stats = read_trace(trace).stats
        assert stats["io"]["disk_reads"] == untraced["disk_accesses"]
        assert stats["comparisons"]["join"] == untraced["comparisons_join"]
        assert stats["comparisons"]["sort"] == untraced["comparisons_sort"]

    def test_parallel_trace_and_profile(self, tmp_path, tree_file,
                                        capsys):
        trace = str(tmp_path / "t.jsonl")
        assert main(["join", tree_file, tree_file, "--algorithm",
                     "sj4", "--workers", "2", "--trace", trace,
                     "--profile"]) == 0
        out = capsys.readouterr().out
        assert "cost-model drift" in out
        assert "phase" in out
        from repro.obs import read_trace
        document = read_trace(trace)
        assert document.meta["workers"] == 2
        assert any(span["name"] == "batch" for span in document.spans)

    def test_profile_with_json_keeps_stdout_parseable(self, tmp_path,
                                                      tree_file, capsys):
        trace = str(tmp_path / "t.jsonl")
        assert main(["join", tree_file, tree_file, "--algorithm",
                     "sj4", "--json", "--trace", trace,
                     "--profile"]) == 0
        captured = capsys.readouterr()
        json.loads(captured.out)              # pure JSON, nothing mixed in
        assert "cost-model drift" in captured.err

    def test_report_renders_phase_table_and_drift(self, tmp_path,
                                                  tree_file, capsys):
        trace = str(tmp_path / "t.jsonl")
        assert main(["join", tree_file, tree_file,
                     "--trace", trace]) == 0
        capsys.readouterr()
        assert main(["report", trace]) == 0
        out = capsys.readouterr().out
        assert "phase" in out
        assert "cost-model drift" in out
        assert "predicted" in out and "measured" in out

    def test_report_json(self, tmp_path, tree_file, capsys):
        trace = str(tmp_path / "t.jsonl")
        assert main(["join", tree_file, tree_file,
                     "--trace", trace]) == 0
        capsys.readouterr()
        assert main(["report", trace, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["drift"] is not None
        assert payload["counters"]["buffer.disk_reads"] > 0
        assert any(row["phase"] == "join" for row in payload["phases"])

    def test_report_validate_accepts_good_trace(self, tmp_path,
                                                tree_file, capsys):
        trace = str(tmp_path / "t.jsonl")
        assert main(["join", tree_file, tree_file,
                     "--trace", trace]) == 0
        capsys.readouterr()
        assert main(["report", trace, "--validate"]) == 0
        assert "valid trace" in capsys.readouterr().out

    def test_report_validate_rejects_junk(self, tmp_path, capsys):
        junk = tmp_path / "junk.jsonl"
        junk.write_text("definitely not a trace\n")
        assert main(["report", str(junk), "--validate"]) == 1
        assert "not JSON" in capsys.readouterr().err

    def test_report_on_invalid_trace_fails_cleanly(self, tmp_path,
                                                   capsys):
        junk = tmp_path / "junk.jsonl"
        junk.write_text("{}\n")
        assert main(["report", str(junk)]) == 1
        assert "error:" in capsys.readouterr().err


class TestDebugFlag:
    def test_errors_are_one_line_by_default(self, tmp_path, capsys):
        assert main(["info", str(tmp_path / "missing.rtree")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_debug_before_subcommand_reraises(self, tmp_path):
        import pytest
        with pytest.raises(OSError):
            main(["--debug", "info", str(tmp_path / "missing.rtree")])

    def test_debug_after_subcommand_reraises(self, tmp_path):
        import pytest
        with pytest.raises(OSError):
            main(["info", str(tmp_path / "missing.rtree"), "--debug"])

    def test_keyerror_is_a_programming_error(self, monkeypatch):
        # A bare KeyError must surface as a traceback even without
        # --debug, not be misclassified as a user error.
        import argparse

        import pytest

        from repro import cli

        def broken(args):
            raise KeyError("bug")

        class StubParser:
            def parse_args(self, argv):
                return argparse.Namespace(handler=broken, debug=False)

        monkeypatch.setattr(cli, "_build_parser", StubParser)
        with pytest.raises(KeyError):
            cli.main([])


class TestServeArgs:
    def test_serve_requires_a_source(self, capsys):
        assert main(["serve", "--port", "0"]) == 2
        assert "--db or --data-dir" in capsys.readouterr().err


class TestBenchMatrix:
    """The run/compare/gate/rank verbs, on synthetic row files."""

    @staticmethod
    def _row(bench, wall_ms, counters=None, params=None):
        return {"schema": 2, "created": "2026-08-08T00:00:00Z",
                "bench": bench, "params": params or {},
                "counters": counters or {}, "wall_ms": wall_ms}

    def _files(self, tmp_path, fresh_wall):
        baseline = tmp_path / "baseline.json"
        fresh = tmp_path / "fresh.json"
        rows = [self._row(b, 100.0) for b in
                ("table2_sj1", "table3_restriction", "table4_sorting",
                 "table5_io_policies", "figure8_sj4_time")]
        baseline.write_text(json.dumps(rows))
        fresh_rows = json.loads(json.dumps(rows))
        fresh_rows[1]["wall_ms"] = fresh_wall
        fresh.write_text(json.dumps(fresh_rows))
        return str(baseline), str(fresh)

    def test_compare_clean_passes(self, tmp_path, capsys):
        baseline, fresh = self._files(tmp_path, 100.0)
        assert main(["bench", "compare", "--baseline", baseline,
                     "--fresh", fresh]) == 0
        assert "0 failure(s)" in capsys.readouterr().out

    def test_compare_regression_exits_nonzero(self, tmp_path, capsys,
                                              tmp_path_factory):
        baseline, fresh = self._files(tmp_path, 150.0)
        table = str(tmp_path / "delta.txt")
        assert main(["bench", "compare", "--baseline", baseline,
                     "--fresh", fresh, "--table", table]) == 1
        captured = capsys.readouterr()
        assert "regressed" in captured.out
        assert "table3_restriction" in open(table).read()

    def test_compare_json_emits_machine_readable_deltas(self, tmp_path,
                                                        capsys):
        baseline, fresh = self._files(tmp_path, 150.0)
        assert main(["bench", "compare", "--baseline", baseline,
                     "--fresh", fresh, "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["failures"] == 1
        regressed = [d for d in payload["deltas"]
                     if d["status"] == "regressed"]
        assert regressed[0]["bench"] == "table3_restriction"

    def test_compare_requires_fresh(self, tmp_path):
        baseline, _ = self._files(tmp_path, 100.0)
        assert main(["bench", "compare", "--baseline", baseline]) == 1

    def test_rank_on_committed_baseline(self, capsys):
        assert main(["bench", "rank"]) == 0
        out = capsys.readouterr().out
        for key in ("restriction", "sweep_layout", "presort",
                    "pinning", "planner", "wal_sync"):
            assert key in out

    def test_rank_json(self, capsys):
        assert main(["bench", "rank", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["components"]
        impacts = [c["impact"] for c in payload["components"]]
        assert impacts == sorted(impacts, reverse=True)

    def test_report_bench_flag(self, capsys):
        assert main(["report", "--bench"]) == 0
        assert "component impact" in capsys.readouterr().out

    def test_report_without_trace_or_bench_fails(self, capsys):
        assert main(["report"]) == 1

    def test_unknown_only_name_fails(self, tmp_path):
        assert main(["bench", "gate", "--only", "no_such_bench",
                     "--baseline",
                     self._files(tmp_path, 100.0)[0]]) == 1
