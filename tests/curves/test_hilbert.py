"""Unit tests for the Hilbert curve."""

import pytest

from repro.curves import HilbertGrid, hilbert_index, hilbert_point
from repro.geometry import Rect


def test_first_cells_of_order_1():
    assert hilbert_index(0, 0, bits=1) == 0
    # The order-1 curve visits all 4 cells exactly once.
    visited = sorted(hilbert_index(x, y, bits=1)
                     for x in range(2) for y in range(2))
    assert visited == [0, 1, 2, 3]


def test_roundtrip():
    bits = 6
    for d in range(0, 1 << (2 * bits), 97):
        x, y = hilbert_point(d, bits)
        assert hilbert_index(x, y, bits) == d


def test_bijection_small_grid():
    bits = 3
    seen = set()
    for x in range(8):
        for y in range(8):
            seen.add(hilbert_index(x, y, bits))
    assert seen == set(range(64))


def test_adjacent_curve_positions_are_adjacent_cells():
    # The defining locality property: consecutive indices differ by one
    # grid step.
    bits = 4
    previous = hilbert_point(0, bits)
    for d in range(1, 1 << (2 * bits)):
        x, y = hilbert_point(d, bits)
        px, py = previous
        assert abs(x - px) + abs(y - py) == 1
        previous = (x, y)


def test_validation():
    with pytest.raises(ValueError):
        hilbert_index(-1, 0)
    with pytest.raises(ValueError):
        hilbert_index(4, 0, bits=2)
    with pytest.raises(ValueError):
        hilbert_point(-1)
    with pytest.raises(ValueError):
        hilbert_point(16, bits=2)


def test_grid_wrapper():
    grid = HilbertGrid(Rect(0, 0, 100, 100), bits=4)
    assert grid.index(0, 0) == hilbert_index(0, 0, 4)
    assert grid.index(-5, -5) == grid.index(0, 0)          # clamped
    rect = Rect(10, 10, 30, 30)
    assert grid.index_of_rect(rect) == grid.index(20, 20)


def test_grid_degenerate_world_rejected():
    with pytest.raises(ValueError):
        HilbertGrid(Rect(0, 0, 10, 0))
