"""Unit tests for z-ordering."""

import pytest

from repro.curves import ZGrid, deinterleave_bits, interleave_bits
from repro.geometry import Rect


class TestInterleave:
    def test_known_values(self):
        # x bits occupy even positions, y bits odd positions.
        assert interleave_bits(0, 0) == 0
        assert interleave_bits(1, 0) == 1
        assert interleave_bits(0, 1) == 2
        assert interleave_bits(1, 1) == 3
        assert interleave_bits(2, 0) == 4
        assert interleave_bits(0, 2) == 8
        assert interleave_bits(3, 3) == 15

    def test_roundtrip(self):
        for x in (0, 1, 5, 100, 65535):
            for y in (0, 2, 77, 65535):
                assert deinterleave_bits(interleave_bits(x, y)) == (x, y)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            interleave_bits(-1, 0)
        with pytest.raises(ValueError):
            deinterleave_bits(-1)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            interleave_bits(4, 0, bits=2)

    def test_z_curve_order_within_quadrants(self):
        # The first four cells of a 2-bit grid follow the Z shape.
        order = sorted(((x, y) for x in range(2) for y in range(2)),
                       key=lambda c: interleave_bits(*c))
        assert order == [(0, 0), (1, 0), (0, 1), (1, 1)]


class TestZGrid:
    def test_zvalue_monotone_in_quadrant(self):
        grid = ZGrid(Rect(0, 0, 100, 100), bits=4)
        assert grid.zvalue(1, 1) < grid.zvalue(99, 99)

    def test_clamping_outside_world(self):
        grid = ZGrid(Rect(0, 0, 100, 100), bits=4)
        assert grid.zvalue(-50, -50) == grid.zvalue(0, 0)
        assert grid.zvalue(500, 500) == grid.zvalue(99.9, 99.9)

    def test_cell_of_boundaries(self):
        grid = ZGrid(Rect(0, 0, 16, 16), bits=4)
        assert grid.cell_of(0, 0) == (0, 0)
        assert grid.cell_of(16, 16) == (15, 15)

    def test_zvalue_of_rect_uses_center(self):
        grid = ZGrid(Rect(0, 0, 16, 16), bits=4)
        rect = Rect(2, 2, 6, 6)
        assert grid.zvalue_of_rect(rect) == grid.zvalue(4, 4)

    def test_degenerate_world_rejected(self):
        with pytest.raises(ValueError):
            ZGrid(Rect(0, 0, 0, 10))
