"""Topology lifecycle tests with real subprocess shards (process
mode): launch, health-check, serve traffic through the router over
TCP, drain cleanly, and fail loudly on a bad build."""

import os
import random
import subprocess
import sys
import time

import pytest

from repro.core.spec import JoinSpec
from repro.db import SpatialDatabase
from repro.geometry import Rect
from repro.serve import ServiceClient, TCPServiceClient
from repro.shard import ShardRouter, ShardTopology
from repro.shard import topology as topology_module
from repro.shard.topology import TopologyError, _ProcessShard


def build_db(n=120, seed=5, world=400.0):
    rng = random.Random(seed)
    db = SpatialDatabase(page_size=1024)
    for name in ("streets", "rivers"):
        relation = db.create_relation(name)
        for _ in range(n):
            x = rng.uniform(0, world)
            y = rng.uniform(0, world)
            relation.insert(Rect(x, y, x + rng.uniform(0.1, 15),
                                 y + rng.uniform(0.1, 15)))
    return db


def test_process_fleet_round_trip():
    db = build_db()
    expected = set(map(tuple,
                       db.join("streets", "rivers",
                               spec=JoinSpec(algorithm="sj2")).pairs))
    topology = ShardTopology.build(db, shards=2, mode="process")
    scratch = topology._scratch_dir
    assert scratch is not None and os.path.isdir(scratch)
    with topology:
        assert topology.alive() == [True, True]
        assert len(topology.addresses) == 2
        # Shards are plain repro serve processes: talk to one raw.
        host, port = topology.addresses[0]
        with TCPServiceClient(host, port) as raw:
            assert raw.call("ping") == "pong"
            names = [entry["name"] for entry in raw.call("relations")]
            assert names == ["rivers", "streets"]
        router = ShardRouter(topology)
        client = ServiceClient(router)
        result = client.join("streets", "rivers", algorithm="auto")
        assert set(map(tuple, result["pairs"])) == expected
        assert result["shards"] == 2
        router.close()
    # Drained: processes gone, scratch catalogs removed.
    assert topology.alive() == [False, False]
    assert not os.path.exists(scratch)


def test_drain_is_idempotent_and_counts():
    db = build_db(n=40)
    topology = ShardTopology.build(db, shards=2, mode="process")
    topology.start()
    assert topology.drain() == 2
    assert topology.drain() == 0


def test_build_rejects_unknown_mode():
    with pytest.raises(ValueError):
        ShardTopology.build(build_db(n=10), shards=2, mode="fork")


def test_build_explicit_directory_is_kept(tmp_path):
    db = build_db(n=30)
    topology = ShardTopology.build(db, shards=2, mode="process",
                                   directory=str(tmp_path))
    # Explicit directory: catalogs are written there and NOT removed
    # on drain (the caller owns them).
    assert sorted(os.listdir(tmp_path)) == ["shard-000", "shard-001"]
    with topology:
        pass
    assert sorted(os.listdir(tmp_path)) == ["shard-000", "shard-001"]
    # The saved catalogs reopen as ordinary databases.
    reopened = SpatialDatabase.open(str(tmp_path / "shard-000"))
    assert set(reopened.relations) == {"streets", "rivers"}


@pytest.mark.parametrize("snippet", [
    # Hangs without printing anything: readline() would block forever.
    "import time; time.sleep(60)",
    # Hangs mid-line: no newline ever arrives either.
    ("import sys, time; sys.stdout.write('serving partial'); "
     "sys.stdout.flush(); time.sleep(60)"),
], ids=["silent", "partial-line"])
def test_process_shard_start_times_out_on_hung_worker(
        monkeypatch, tmp_path, snippet):
    real_popen = subprocess.Popen

    def hung_worker(cmd, **kwargs):
        return real_popen([sys.executable, "-u", "-c", snippet],
                          **kwargs)

    monkeypatch.setattr(topology_module.subprocess, "Popen",
                        hung_worker)
    shard = _ProcessShard(0, str(tmp_path), 1, 8)
    began = time.monotonic()
    with pytest.raises(TopologyError, match="did not report"):
        shard.start(timeout=1.0)
    # The deadline applied (nowhere near the worker's 60s sleep) and
    # the hung worker was killed, not leaked.
    assert time.monotonic() - began < 10.0
    assert not shard.alive


def test_thread_mode_context_manager():
    db = build_db(n=30)
    with ShardTopology.build(db, shards=4, mode="thread") as topology:
        assert topology.n_shards == 4
        assert all(topology.alive())
    assert not any(topology.alive())
