"""Router tests over an in-process (thread-mode) topology: pair-set
equality with the library join for every algorithm, window/kNN/get
merging, mutations with epoch-keyed cache invalidation, and the
shard-aware stats payload."""

import random

import pytest

from repro.core.spec import JoinSpec
from repro.db import SpatialDatabase
from repro.geometry import Rect
from repro.serve import ServiceClient
from repro.shard import ShardRouter, ShardTopology


def build_db(n=250, seed=31, world=1000.0):
    rng = random.Random(seed)
    db = SpatialDatabase(page_size=1024)
    for name in ("streets", "rivers"):
        relation = db.create_relation(name)
        for _ in range(n):
            x = rng.uniform(0, world)
            y = rng.uniform(0, world)
            relation.insert(Rect(x, y, x + rng.uniform(0.1, 30),
                                 y + rng.uniform(0.1, 30)))
    return db


@pytest.fixture(scope="module")
def fleet():
    db = build_db()
    with ShardTopology.build(db, shards=4, mode="thread") as topology:
        router = ShardRouter(topology)
        yield db, router, ServiceClient(router)
        router.close()


def library_pairs(db, algorithm="sj2"):
    result = db.join("streets", "rivers",
                     spec=JoinSpec(algorithm=algorithm))
    return set(map(tuple, result.pairs))


# ----------------------------------------------------------------------
# Reads
# ----------------------------------------------------------------------

@pytest.mark.parametrize("algorithm",
                         ["auto", "sj1", "sj2", "sj3", "sj4", "sj5"])
def test_join_equals_library_every_algorithm(fleet, algorithm):
    db, _, client = fleet
    expected = library_pairs(db)
    result = client.join("streets", "rivers", algorithm=algorithm)
    assert set(map(tuple, result["pairs"])) == expected
    assert result["count"] == len(expected)
    assert result["shards"] >= 1
    assert result["stats"]["algorithms"]
    # Merged counters are sums over shards, never below one shard's.
    assert result["stats"]["comparisons"] > 0


def test_join_pairs_sorted_and_deduplicated(fleet):
    _, _, client = fleet
    result = client.join("streets", "rivers", algorithm="sj2")
    assert result["pairs"] == sorted(map(list, result["pairs"]))
    assert len(set(map(tuple, result["pairs"]))) == result["count"]
    assert result["stats"]["duplicates_dropped"] >= 0


def test_window_equals_library(fleet):
    db, _, client = fleet
    window = [150.0, 150.0, 600.0, 500.0]
    expected = sorted(db.relation("streets").window(Rect(*window)))
    result = client.window("streets", window)
    assert result["refs"] == expected
    assert result["shards"] >= 1


def test_window_outside_any_data_is_empty(fleet):
    _, _, client = fleet
    result = client.window("streets", [-500.0, -500.0, -400.0, -400.0])
    assert result["refs"] == []


def test_knn_equals_library(fleet):
    db, _, client = fleet
    expected = db.relation("rivers").nearest(321.0, 654.0, k=9)
    result = client.knn("rivers", 321.0, 654.0, k=9)
    assert [ref for ref, _ in result["neighbors"]] \
        == [ref for ref, _ in expected]
    assert result["shards"] == 4


def test_get_routes_to_owner_shard(fleet):
    db, _, client = fleet
    geometry = db.relation("streets").get(7)
    result = client.call("get", relation="streets", oid=7)
    assert result["shards"] == 1
    assert result["geometry"]["kind"] == "rect"
    assert result["geometry"]["coords"] == [geometry.xl, geometry.yl,
                                            geometry.xu, geometry.yu]


def test_explain_reports_per_shard_plans(fleet):
    _, _, client = fleet
    result = client.call("explain", left="streets", right="rivers")
    assert result["shards"] >= 1
    assert len(result["shard_plans"]) == result["shards"]
    assert result["plan"]["algorithm"]    # the lead (busiest) plan
    cells = [entry["cell"] for entry in result["shard_plans"]]
    assert cells == sorted(cells)


def test_relations_lists_census(fleet):
    _, router, client = fleet
    listing = client.call("relations")
    names = [entry["name"] for entry in listing]
    assert "streets" in names and "rivers" in names
    streets = next(e for e in listing if e["name"] == "streets")
    assert streets["objects"] == 250
    assert streets["copies"] >= streets["objects"]


def test_unknown_relation_maps_to_catalog_error(fleet):
    _, _, client = fleet
    response = client.request("join", left="streets", right="nope")
    assert response["ok"] is False
    assert response["error"]["code"] == "catalog"


def test_bad_algorithm_rejected_before_fanout(fleet):
    _, router, client = fleet
    before = router.obs.metrics.counter("shard.subrequests")
    response = client.request("join", left="streets", right="rivers",
                              algorithm="quantum")
    assert response["ok"] is False
    assert response["error"]["code"] == "query"
    assert router.obs.metrics.counter("shard.subrequests") == before


# ----------------------------------------------------------------------
# Cache + mutations
# ----------------------------------------------------------------------

def test_cache_replay_preserves_shards_field(fleet):
    _, _, client = fleet
    params = dict(left="streets", right="rivers", algorithm="sj3")
    first = client.request("join", **params)
    replay = client.request("join", **params)
    assert first["cached"] is False or first["cached"] is True
    assert replay["cached"] is True
    assert replay["result"]["shards"] == first["result"]["shards"]
    assert replay["result"]["pairs"] == first["result"]["pairs"]


def test_mutations_invalidate_and_update_every_copy(fleet):
    db, router, client = fleet
    params = dict(left="streets", right="rivers", algorithm="sj2")
    baseline = client.request("join", **params)["result"]
    # A rectangle spanning the whole universe: a copy in all 4 cells,
    # intersecting everything.
    inserted = client.insert(
        "streets", {"kind": "rect", "coords": [0.0, 0.0,
                                               1000.0, 1000.0]})
    assert inserted["shards"] == 4
    oid = inserted["oid"]
    assert oid == 250                  # router owns the id space
    after = client.request("join", **params)
    assert after["cached"] is False    # epoch bump = new cache key
    grown = set(map(tuple, after["result"]["pairs"]))
    assert {(oid, b) for b in range(250)} <= grown
    # Window and get see it too.
    assert oid in client.window("streets",
                                [500.0, 500.0, 501.0, 501.0])["refs"]
    assert client.call("get", relation="streets",
                       oid=oid)["geometry"]["coords"] \
        == [0.0, 0.0, 1000.0, 1000.0]
    # Delete restores the exact baseline pair set.
    assert client.delete("streets", oid)["shards"] == 4
    restored = client.request("join", **params)
    assert restored["cached"] is False
    assert restored["result"]["pairs"] == baseline["pairs"]


def test_duplicate_oid_rejected(fleet):
    _, _, client = fleet
    response = client.request(
        "insert", relation="streets", oid=3,
        geometry={"kind": "rect", "coords": [1.0, 1.0, 2.0, 2.0]})
    assert response["ok"] is False
    assert response["error"]["code"] == "catalog"


def test_create_drop_round_trip(fleet):
    _, router, client = fleet
    created = client.call("create", relation="lakes")
    assert created["shards"] == 4
    assert "lakes" in router.pmap
    oid = client.insert("lakes", {"kind": "rect",
                                  "coords": [5.0, 5.0, 6.0, 6.0]})["oid"]
    assert oid == 0
    assert client.window("lakes", [0.0, 0.0, 10.0, 10.0])["refs"] == [0]
    dropped = client.call("drop", relation="lakes")
    assert dropped["shards"] == 4
    assert "lakes" not in router.pmap
    response = client.request("window", relation="lakes",
                              window=[0.0, 0.0, 1.0, 1.0])
    assert response["ok"] is False
    assert response["error"]["code"] == "catalog"


def test_non_rect_geometry_partitioned_by_mbr(fleet):
    _, _, client = fleet
    client.call("create", relation="paths")
    try:
        oid = client.insert(
            "paths", {"kind": "polyline",
                      "coords": [[100.0, 100.0], [900.0, 900.0]]})["oid"]
        got = client.call("get", relation="paths", oid=oid)
        assert got["geometry"]["kind"] == "polyline"
        # Its MBR spans all four cells; every shard finds it.
        refs = client.window("paths",
                             [400.0, 400.0, 600.0, 600.0])["refs"]
        assert refs == [oid]
    finally:
        client.call("drop", relation="paths")


def test_window_outside_universe_finds_clamped_objects(fleet):
    _, _, client = fleet
    # Objects inserted outside the partition universe clamp onto the
    # border cells; a window wholly outside the universe must clamp
    # the same way (a geometric tile test would answer the empty set).
    client.call("create", relation="outliers")
    try:
        oid = client.insert(
            "outliers", {"kind": "rect",
                         "coords": [-50.0, -50.0, -40.0, -40.0]})["oid"]
        result = client.window("outliers",
                               [-60.0, -60.0, -35.0, -35.0])
        assert result["refs"] == [oid]
        assert result["shards"] == 1
        # Clamping toward the opposite border reaches a different cell
        # with no copy there — still empty, no duplicates.
        far = client.window("outliers",
                            [1100.0, 1100.0, 1200.0, 1200.0])
        assert far["refs"] == []
    finally:
        client.call("drop", relation="outliers")


def test_drop_connection_prunes_registry(fleet):
    _, router, _ = fleet
    conn = router._connection(0)
    assert conn in router._conn_registry
    router._drop_connection(0)
    assert conn not in router._conn_registry
    # Dropping again (or a never-opened cell) is a no-op.
    router._drop_connection(0)


# ----------------------------------------------------------------------
# Partial failures (sabotaged shards)
# ----------------------------------------------------------------------

@pytest.fixture()
def small_fleet():
    db = build_db(n=60, seed=7)
    with ShardTopology.build(db, shards=4, mode="thread") as topology:
        # One worker thread: every request reuses the same per-thread
        # shard connections, so a response leaked by one failed fan-out
        # would poison every request that follows.
        router = ShardRouter(topology, workers=1)
        yield db, topology, router, ServiceClient(router)
        router.close()


def shard_client(topology, cell):
    from repro.serve import TCPServiceClient
    host, port = topology.addresses[cell]
    return TCPServiceClient(host, port, timeout=5.0)


def test_shard_error_mid_fanout_does_not_poison_connections(
        small_fleet):
    db, topology, router, client = small_fleet
    window = [0.0, 0.0, 1000.0, 1000.0]
    expected = sorted(db.relation("streets").window(Rect(*window)))
    # Sabotage one shard behind the router's back so a join fan-out
    # errors there while the other cells' responses are still in
    # flight.
    with shard_client(topology, 2) as raw:
        raw.call("drop", relation="rivers")
    response = client.request("join", left="streets", right="rivers",
                              algorithm="sj2")
    assert response["ok"] is False
    assert response["error"]["code"] == "catalog"
    # The pending responses were drained, not left buffered: the same
    # worker thread's connections keep answering correctly.
    for _ in range(3):
        assert client.window("streets", window)["refs"] == expected
    assert client.call("ping") == "pong"


def test_failed_insert_rolls_back_and_bumps_epoch(small_fleet):
    db, topology, router, client = small_fleet
    params = dict(left="streets", right="rivers", algorithm="sj2")
    baseline = client.request("join", **params)["result"]
    oid = router.pmap.next_oid("streets")
    # Plant a conflicting oid on one shard behind the router's back,
    # so the fanned-out insert applies on the other cells but fails
    # there.
    with shard_client(topology, 3) as raw:
        raw.call("insert", relation="streets", oid=oid,
                 geometry={"kind": "rect",
                           "coords": [910.0, 910.0, 920.0, 920.0]})
    response = client.request(
        "insert", relation="streets",
        geometry={"kind": "rect",
                  "coords": [0.0, 0.0, 1000.0, 1000.0]})
    assert response["ok"] is False
    assert response["error"]["code"] == "catalog"
    # Rolled back: the routing map never learned the object, the epoch
    # bump invalidated the cached join, and no shard still serves a
    # copy (the merged pair set is exactly the baseline — a leftover
    # copy would either add pairs or crash the dedup lookup).
    assert router.pmap.mbr("streets", oid) is None
    after = client.request("join", **params)
    assert after["ok"] is True
    assert after["cached"] is False
    assert after["result"]["pairs"] == baseline["pairs"]


def test_failed_delete_rolls_forward(small_fleet):
    db, topology, router, client = small_fleet
    window = [0.0, 0.0, 1000.0, 1000.0]
    oid = client.insert(
        "streets", {"kind": "rect",
                    "coords": [0.0, 0.0, 1000.0, 1000.0]})["oid"]
    # Remove one copy behind the router's back so the fanned-out
    # delete fails on that shard after others already applied it.
    with shard_client(topology, 1) as raw:
        raw.call("delete", relation="streets", oid=oid)
    response = client.request("delete", relation="streets", oid=oid)
    assert response["ok"] is False
    assert response["error"]["code"] == "catalog"
    # Rolled forward: gone from the routing map and from every shard,
    # so reads agree with the map and match the unmutated library db.
    assert router.pmap.mbr("streets", oid) is None
    expected = sorted(db.relation("streets").window(Rect(*window)))
    assert client.window("streets", window)["refs"] == expected
    result = client.join("streets", "rivers", algorithm="sj2")
    assert all(a != oid for a, _ in result["pairs"])


# ----------------------------------------------------------------------
# Stats / observability
# ----------------------------------------------------------------------

def test_stats_surfaces_cache_and_topology(fleet):
    _, router, client = fleet
    stats = client.call("stats")
    for key in ("hits", "misses", "evictions", "hit_rate", "entries",
                "bytes"):
        assert key in stats["cache"]
    topo = stats["topology"]
    assert topo["shards"] == 4
    assert topo["grid"] == [2, 2]
    assert topo["mode"] == "thread"
    assert topo["alive"] == 4
    assert topo["relations"]["streets"]["replication"] >= 1.0
    assert set(topo["relations"]["streets"]["classes"]) \
        == {"A", "B", "C", "D"}
    counters = stats["counters"]
    assert counters["shard.requests"] > 0
    assert counters["shard.subrequests"] > 0
    assert "latency_ms" in stats


def test_ping(fleet):
    _, _, client = fleet
    assert client.call("ping") == "pong"
