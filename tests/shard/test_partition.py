"""Partitioner unit tests plus the exactness property: partition-local
joins + reference-point dedup reproduce the single-tree pair set on
random grids, skews, and boundary-spanning rectangles (hypothesis)."""

import itertools
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Rect
from repro.shard import (GridPartitioner, PartitionMap, grid_for,
                         pair_reference_point)
from repro.shard.partition import dedup_pairs

# ----------------------------------------------------------------------
# grid_for
# ----------------------------------------------------------------------

def test_grid_for_most_square_factorizations():
    assert grid_for(1) == (1, 1)
    assert grid_for(2) == (2, 1)
    assert grid_for(4) == (2, 2)
    assert grid_for(8) == (4, 2)
    assert grid_for(12) == (4, 3)
    assert grid_for(7) == (7, 1)      # primes fall back to Nx1


def test_grid_for_rejects_nonpositive():
    try:
        grid_for(0)
    except ValueError:
        pass
    else:
        raise AssertionError("expected ValueError")


# ----------------------------------------------------------------------
# Cell geometry
# ----------------------------------------------------------------------

def test_cells_partition_the_universe():
    grid = GridPartitioner(4, 3, Rect(0, 0, 40, 30))
    assert grid.n_cells == 12
    # Tiles cover the universe and agree with point location away
    # from shared edges.
    for cell in range(12):
        tile = grid.tile(cell)
        cx = (tile.xl + tile.xu) / 2
        cy = (tile.yl + tile.yu) / 2
        assert grid.cell_of_point(cx, cy) == cell


def test_point_location_clamps_outside_universe():
    grid = GridPartitioner(2, 2, Rect(0, 0, 10, 10))
    assert grid.cell_of_point(-5, -5) == 0
    assert grid.cell_of_point(99, -1) == 1
    assert grid.cell_of_point(-1, 99) == 2
    assert grid.cell_of_point(99, 99) == 3


def test_cells_of_rect_covers_every_overlapped_tile():
    grid = GridPartitioner(3, 3, Rect(0, 0, 9, 9))
    # Spans the middle column and middle row around the center cell.
    cells = grid.cells_of_rect(Rect(2.5, 2.5, 6.5, 6.5))
    assert cells == [0, 1, 2, 3, 4, 5, 6, 7, 8]
    assert grid.cells_of_rect(Rect(1, 1, 2, 2)) == [0]
    assert grid.cells_of_rect(Rect(4, 1, 5, 2)) == [1]


def test_two_layer_classes():
    grid = GridPartitioner(2, 2, Rect(0, 0, 10, 10))
    spanning = Rect(4, 4, 6, 6)       # overlaps all four cells
    assert grid.owner_cell(spanning) == 0
    assert grid.classify(spanning, 0) == "A"
    assert grid.classify(spanning, 1) == "B"   # begins to the west
    assert grid.classify(spanning, 2) == "C"   # begins to the south
    assert grid.classify(spanning, 3) == "D"   # south-west diagonal


def test_reference_point_is_intersection_corner():
    a = Rect(0, 0, 5, 5)
    b = Rect(3, 2, 8, 8)
    assert pair_reference_point(a, b) == (3.0, 2.0)
    assert pair_reference_point(b, a) == (3.0, 2.0)


def test_partition_map_census_and_mutation():
    grid = GridPartitioner(2, 2, Rect(0, 0, 10, 10))
    pmap = PartitionMap(grid)
    pmap.create_relation("r")
    assert "r" in pmap and pmap.objects("r") == 0
    cells = pmap.add("r", 0, Rect(4, 4, 6, 6))
    assert cells == [0, 1, 2, 3]
    assert pmap.copies("r") == 4
    assert pmap.replication_factor("r") == 4.0
    assert pmap.class_counts["r"] == {"A": 1, "B": 1, "C": 1, "D": 1}
    pmap.add("r", 1, Rect(1, 1, 2, 2))
    assert pmap.next_oid("r") == 2
    assert pmap.nonempty_cells("r") == [0, 1, 2, 3]
    assert pmap.remove("r", 0) == [0, 1, 2, 3]
    assert pmap.nonempty_cells("r") == [0]
    assert pmap.mbr("r", 0) is None
    pmap.drop_relation("r")
    assert "r" not in pmap


# ----------------------------------------------------------------------
# The exactness property
# ----------------------------------------------------------------------

coords = st.floats(min_value=-20.0, max_value=120.0,
                   allow_nan=False, allow_infinity=False)
extents = st.floats(min_value=0.0, max_value=60.0,
                    allow_nan=False, allow_infinity=False)


@st.composite
def rect_strategy(draw):
    # Extents up to 60 over a ~100-wide universe guarantee plenty of
    # boundary-spanning rectangles on any grid; coords beyond [0, 100]
    # exercise the clamp path.
    x, y = draw(coords), draw(coords)
    return Rect(x, y, x + draw(extents), y + draw(extents))


def brute_force_pairs(left, right):
    return {(a, b) for (a, ra), (b, rb)
            in itertools.product(enumerate(left), enumerate(right))
            if ra.intersects(rb)}


def sharded_pairs(grid, left, right):
    """Simulate the fleet: per-cell local joins, then the router's
    reference-point dedup — without any server in the loop."""
    cells_left = [[] for _ in range(grid.n_cells)]
    cells_right = [[] for _ in range(grid.n_cells)]
    for oid, rect in enumerate(left):
        for cell in grid.cells_of_rect(rect):
            cells_left[cell].append((oid, rect))
    for oid, rect in enumerate(right):
        for cell in grid.cells_of_rect(rect):
            cells_right[cell].append((oid, rect))
    left_mbrs = dict(enumerate(left))
    right_mbrs = dict(enumerate(right))
    merged = set()
    total_local = 0
    for cell in range(grid.n_cells):
        local = [(a, b)
                 for (a, ra), (b, rb) in itertools.product(
                     cells_left[cell], cells_right[cell])
                 if ra.intersects(rb)]
        total_local += len(local)
        owned = dedup_pairs(grid, cell, local, left_mbrs, right_mbrs)
        assert not merged & set(owned), "pair owned by two cells"
        merged |= set(owned)
    return merged, total_local


@settings(max_examples=40, deadline=None)
@given(st.lists(rect_strategy(), min_size=0, max_size=40),
       st.lists(rect_strategy(), min_size=0, max_size=40),
       st.integers(min_value=1, max_value=5),
       st.integers(min_value=1, max_value=5),
       st.data())
def test_sharded_join_equals_single_tree(left, right, cells_x, cells_y,
                                         data):
    # A universe that usually does NOT cover all the data, so the
    # clamped border cells carry out-of-universe rectangles.
    xl = data.draw(st.floats(min_value=-10, max_value=10))
    yl = data.draw(st.floats(min_value=-10, max_value=10))
    side = data.draw(st.floats(min_value=1.0, max_value=100.0))
    grid = GridPartitioner(cells_x, cells_y,
                           Rect(xl, yl, xl + side, yl + side))
    expected = brute_force_pairs(left, right)
    merged, total_local = sharded_pairs(grid, left, right)
    assert merged == expected
    # Replication can only add duplicate findings, never lose pairs.
    assert total_local >= len(expected)


@settings(max_examples=20, deadline=None)
@given(st.lists(rect_strategy(), min_size=1, max_size=50),
       st.integers(min_value=1, max_value=4),
       st.integers(min_value=1, max_value=4))
def test_every_copy_class_consistent(rects, cells_x, cells_y):
    grid = GridPartitioner(cells_x, cells_y, Rect(0, 0, 100, 100))
    for rect in rects:
        cells = grid.cells_of_rect(rect)
        owner = grid.owner_cell(rect)
        assert owner in cells
        labels = [grid.classify(rect, cell) for cell in cells]
        assert labels.count("A") == 1    # exactly one primary copy
        assert labels[cells.index(owner)] == "A"


def test_skewed_clusters_still_exact():
    # Heavy skew: two dense clusters at opposite corners plus objects
    # spanning the full universe.
    rng = random.Random(99)
    left, right = [], []
    for target in (left, right):
        for _ in range(120):
            cx, cy = (rng.uniform(0, 15), rng.uniform(0, 15)) \
                if rng.random() < 0.5 else (rng.uniform(85, 100),
                                            rng.uniform(85, 100))
            target.append(Rect(cx, cy, cx + rng.uniform(0, 4),
                               cy + rng.uniform(0, 4)))
        target.append(Rect(0, 0, 100, 100))   # spans every cell
    for cells_x, cells_y in ((2, 2), (4, 2), (5, 3)):
        grid = GridPartitioner(cells_x, cells_y, Rect(0, 0, 100, 100))
        merged, _ = sharded_pairs(grid, left, right)
        assert merged == brute_force_pairs(left, right)
