"""Router coherence under MVCC ingest: shard-local delta absorption
and background rebuilds must be invisible through the fan-out/merge
router — reads interleaved with writes and mid-stream forced rebuilds
always merge to the same answer the library computes."""

import random

import pytest

from repro.core.spec import JoinSpec
from repro.db import SpatialDatabase
from repro.geometry import Rect
from repro.serve import ServiceClient
from repro.shard import ShardRouter, ShardTopology


def build_db(n=150, seed=43, world=1000.0):
    rng = random.Random(seed)
    db = SpatialDatabase(page_size=1024)
    for name in ("streets", "rivers"):
        relation = db.create_relation(name)
        for _ in range(n):
            x = rng.uniform(0, world)
            y = rng.uniform(0, world)
            relation.insert(Rect(x, y, x + rng.uniform(0.1, 30),
                                 y + rng.uniform(0.1, 30)))
    return db


@pytest.fixture
def fleet():
    db = build_db()
    with ShardTopology.build(db, shards=4, mode="thread") as topology:
        router = ShardRouter(topology)
        yield db, topology, router, ServiceClient(router)
        router.close()


def shard_services(topology):
    """The shard-local QueryServices (thread mode only)."""
    return [shard._server.service for shard in topology.shards]


def force_rebuild_everywhere(topology):
    return sum(service.force_rebuild()
               for service in shard_services(topology))


def test_shard_services_run_mvcc_ingest(fleet):
    _, topology, _, _ = fleet
    for service in shard_services(topology):
        assert service.ingest == "delta"


def test_router_joins_coherent_across_rebuilds(fleet):
    """Interleave router writes with joins, forcing shard rebuilds
    between every batch; the router must always match a mirror
    database receiving the same logical mutations."""
    db, topology, router, client = fleet
    rng = random.Random(7)
    spec = JoinSpec(algorithm="sj2")
    mine = []
    for batch in range(4):
        for _ in range(6):
            x, y = rng.uniform(0, 960), rng.uniform(0, 960)
            coords = [x, y, x + rng.uniform(5, 35),
                      y + rng.uniform(5, 35)]
            oid = client.insert(
                "streets", {"kind": "rect", "coords": coords})["oid"]
            # Mirror the write into the reference database under the
            # router-assigned id.
            db.relation("streets").insert(Rect(*coords), oid=oid)
            mine.append(oid)
        if batch % 2 == 1 and mine:
            victim = mine.pop(rng.randrange(len(mine)))
            assert client.delete("streets", victim)["shards"] >= 1
            db.relation("streets").delete(victim)
        # Adversarial timing: every shard merges its delta into a
        # fresh tree between the write batch and the reads.
        if batch % 2 == 0:
            assert force_rebuild_everywhere(topology) > 0
        joined = client.join("streets", "rivers", algorithm="sj2")
        expected = set(map(tuple, db.join("streets", "rivers",
                                          spec=spec).pairs))
        assert set(map(tuple, joined["pairs"])) == expected
        window = [200.0, 200.0, 800.0, 800.0]
        assert client.window("streets", window)["refs"] == \
            sorted(db.relation("streets").window(Rect(*window)))


def test_rebuild_preserves_router_cache_validity(fleet):
    """A rebuild changes no visible data, so a router-cached result
    replayed after shard rebuilds is still correct (and still served
    from the router cache — epochs did not move)."""
    _, topology, router, client = fleet
    params = dict(left="streets", right="rivers", algorithm="sj2")
    client.insert("streets", {"kind": "rect",
                              "coords": [10.0, 10.0, 40.0, 40.0]})
    first = client.request("join", **params)
    assert first["ok"]
    assert force_rebuild_everywhere(topology) > 0
    replay = client.request("join", **params)
    assert replay["cached"] is True
    assert replay["result"]["pairs"] == first["result"]["pairs"]
    # And a forced recompute (cache-busting param) agrees too.
    recomputed = client.request("join", buffer_kb=96.0, **params)
    assert recomputed["result"]["pairs"] == first["result"]["pairs"]


def test_window_during_shard_rebuild_is_stable(fleet):
    """Reads racing a slow shard rebuild see either the pre- or
    post-merge snapshot — identical data — never an error."""
    import threading
    import time

    _, topology, router, client = fleet
    client.insert("streets", {"kind": "rect",
                              "coords": [500.0, 500.0, 520.0, 520.0]})
    window = [480.0, 480.0, 540.0, 540.0]
    baseline = client.window("streets", window)["refs"]

    services = shard_services(topology)
    events = []
    for service in services:
        for relation in service.db.relations.values():
            real = relation.build_merged
            gate = threading.Event()
            events.append(gate)

            def slow(fill=0.9, _real=real, _gate=gate):
                _gate.set()
                time.sleep(0.3)
                return _real(fill=fill)

            relation.build_merged = slow

    rebuilder = threading.Thread(
        target=lambda: [service.force_rebuild()
                        for service in services])
    rebuilder.start()
    try:
        deadline = time.monotonic() + 5.0
        while not any(gate.is_set() for gate in events):
            assert time.monotonic() < deadline
            time.sleep(0.01)
        for _ in range(10):
            assert client.window("streets", window)["refs"] == baseline
    finally:
        rebuilder.join(30.0)
