"""Fault tolerance of the parallel executor.

The contract under injected storage faults: the pair multiset never
changes.  Transients are absorbed by the buffer manager's retries, a
failed batch is re-dispatched to a fresh worker, and a batch that stays
unrecoverable runs serially in the coordinator against pristine stores
— every rung of the ladder is exact, only slower.
"""

import multiprocessing
import os

import pytest

from repro.core import JoinSpec, parallel_spatial_join, spatial_join
from repro.core.stats import JoinStatistics
from repro.storage import (FaultInjectingPageStore, FaultPlan,
                           MemoryPageStore, TransientIOError)
from tests.conftest import build_rstar, make_rects

ALGORITHMS = ("sj1", "sj2", "sj3", "sj4", "sj5")


def _fresh_trees(count=700, seeds=(71, 72)):
    tree_r = build_rstar(make_rects(count, seed=seeds[0]), page_size=256)
    tree_s = build_rstar(make_rects(count, seed=seeds[1]), page_size=256)
    return tree_r, tree_s


def _inject(tree, plan):
    tree.store = FaultInjectingPageStore(tree.store, plan)
    return tree.store


# ----------------------------------------------------------------------
# Rung 1: transients absorbed by the buffer manager's retries
# ----------------------------------------------------------------------

@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_parity_under_seeded_transients(algorithm):
    tree_r, tree_s = _fresh_trees()
    baseline = sorted(spatial_join(tree_r, tree_s,
                                   spec=JoinSpec(algorithm=algorithm, buffer_kb=16)).pairs)
    plan = FaultPlan(seed=101, read_transient_p=0.3,
                     max_transients_per_page=2)
    _inject(tree_r, plan)
    _inject(tree_s, plan)
    result = parallel_spatial_join(
        tree_r, tree_s,
        JoinSpec(algorithm=algorithm, buffer_kb=16, workers=2,
                 max_retries=2))
    assert sorted(result.pairs) == baseline
    assert result.stats.faults_injected > 0
    assert result.stats.io.read_retries > 0
    assert result.stats.io.backoff_ticks > 0
    # The cap (2 transients/page) vs max_retries (2) guarantees every
    # fetch eventually lands: nothing escalated past the manager.
    assert result.stats.batch_retries == 0
    assert result.stats.degraded_batches == 0


# ----------------------------------------------------------------------
# Rung 2: a failed batch is re-dispatched to a fresh worker
# ----------------------------------------------------------------------

class FirstContactStore(MemoryPageStore):
    """Physical reads in *worker* processes raise one transient until
    the sentinel file exists (created on first failure), so the first
    dispatch of a batch fails and its retry — in a fresh worker, with
    the sentinel now on disk — succeeds.  File-based state makes the
    failure exactly-once across processes."""

    def __init__(self, sentinel):
        super().__init__()
        self.sentinel = sentinel

    def read_faulty(self, page_id):
        if multiprocessing.current_process().daemon and \
                not os.path.exists(self.sentinel):
            with open(self.sentinel, "w"):
                pass
            raise TransientIOError("first contact with the disk")
        return self.read(page_id)


def test_batch_retry_recovers_in_a_fresh_worker(tmp_path):
    tree_r, tree_s = _fresh_trees(500, seeds=(73, 74))
    baseline = sorted(spatial_join(tree_r, tree_s, spec=JoinSpec(buffer_kb=16)).pairs)
    failing = FirstContactStore(str(tmp_path / "fault-fired"))
    donor = tree_r.store
    failing._pages = donor._pages
    failing._free = donor._free
    failing._next = donor._next
    tree_r.store = failing

    result = parallel_spatial_join(
        tree_r, tree_s,
        JoinSpec(buffer_kb=16, workers=2, max_retries=0,
                 batch_retries=1, batch_timeout=60.0))
    assert sorted(result.pairs) == baseline
    assert result.stats.batch_retries >= 1
    assert result.retried_batch_ids
    assert result.stats.degraded_batches == 0
    assert result.degraded_batch_ids == []


# ----------------------------------------------------------------------
# Rung 3: unrecoverable batches degrade to serial coordinator runs
# ----------------------------------------------------------------------

def test_unrecoverable_workers_degrade_to_serial():
    tree_r, tree_s = _fresh_trees(500, seeds=(75, 76))
    baseline = sorted(spatial_join(tree_r, tree_s, spec=JoinSpec(buffer_kb=16)).pairs)
    # Unbounded certain transients, workers only: the coordinator's
    # partitioning descent stays clean, every worker attempt is doomed.
    plan = FaultPlan(seed=9, read_transient_p=1.0,
                     max_transients_per_page=None, worker_only=True)
    _inject(tree_r, plan)
    _inject(tree_s, plan)
    spec = JoinSpec(buffer_kb=16, workers=2, max_retries=1,
                    batch_retries=1, batch_timeout=60.0)
    result = parallel_spatial_join(tree_r, tree_s, spec)

    assert sorted(result.pairs) == baseline
    batches = len(result.batch_sizes)
    assert batches == 2
    assert sorted(result.retried_batch_ids) == list(range(batches))
    assert sorted(result.degraded_batch_ids) == list(range(batches))
    assert result.stats.batch_retries == batches * spec.batch_retries
    assert result.stats.degraded_batches == batches


def test_crashed_worker_degrades_instead_of_raising():
    tree_r, tree_s = _fresh_trees(400, seeds=(77, 78))
    baseline = sorted(spatial_join(tree_r, tree_s, spec=JoinSpec(buffer_kb=16)).pairs)
    # Every physical read in a worker kills it outright (os._exit); the
    # pool never delivers a result, so the per-batch timeout is what
    # turns the death into a recoverable failure.
    plan = FaultPlan(seed=10, crash_read_p=1.0)
    _inject(tree_r, plan)
    _inject(tree_s, plan)
    result = parallel_spatial_join(
        tree_r, tree_s,
        JoinSpec(buffer_kb=16, workers=2, batch_retries=0,
                 batch_timeout=2.0))

    assert sorted(result.pairs) == baseline
    assert result.stats.degraded_batches == len(result.batch_sizes) >= 1
    assert result.stats.batch_retries == 0
    assert sorted(result.degraded_batch_ids) == \
        list(range(len(result.batch_sizes)))


def test_degraded_run_restores_the_injectors():
    tree_r, tree_s = _fresh_trees(400, seeds=(79, 80))
    plan = FaultPlan(seed=9, read_transient_p=1.0,
                     max_transients_per_page=None, worker_only=True)
    injector_r = _inject(tree_r, plan)
    injector_s = _inject(tree_s, plan)
    parallel_spatial_join(
        tree_r, tree_s,
        JoinSpec(buffer_kb=16, workers=2, max_retries=0,
                 batch_retries=0, batch_timeout=60.0))
    # The pristine swap during degradation is scoped to the batch.
    assert tree_r.store is injector_r
    assert tree_s.store is injector_s


# ----------------------------------------------------------------------
# Plumbing
# ----------------------------------------------------------------------

def test_fault_counters_merge():
    a = JoinStatistics()
    a.faults_injected = 2
    a.batch_retries = 1
    a.degraded_batches = 1
    b = JoinStatistics()
    b.faults_injected = 3
    merged = a.merge(b)
    assert merged.faults_injected == 5
    assert merged.batch_retries == 1
    assert merged.degraded_batches == 1


def test_spec_validates_fault_tolerance_fields():
    with pytest.raises(ValueError):
        JoinSpec(max_retries=-1)
    with pytest.raises(ValueError):
        JoinSpec(batch_retries=-1)
    with pytest.raises(ValueError):
        JoinSpec(batch_timeout=0.0)
    assert JoinSpec(batch_timeout=None).batch_timeout is None
