"""Columnar-vs-object kernel parity.

The join engine runs its hot kernels (restriction, nested loop, sorted
plane sweep) against either the struct-of-arrays ``NodeColumns`` view
or the classic per-``Entry`` objects, switched by
``set_kernel_layout``.  The contract pinned here: for SJ1–SJ5, serial
and ``workers=2``, both layouts produce the identical pair set and
bit-identical ``JoinStatistics`` — every comparison charge, every
buffer event.  Each layout gets freshly built trees, because
maintained-mode joins physically sort node pages (idempotently), so a
shared tree would hand the second run pre-sorted input and hide any
divergence in the initial sorting charges.  The suite runs on
whichever column backend is active (numpy, or stdlib ``array`` under
``REPRO_NO_NUMPY=1``), so CI covers both.
"""

import pytest

from repro.core import JoinSpec, spatial_join
from repro.rtree import kernel_layout, set_kernel_layout
from tests.conftest import build_rstar, make_rects

ALGORITHMS = ("sj1", "sj2", "sj3", "sj4", "sj5")

RECORDS_R = make_rects(700, seed=7)
RECORDS_S = make_rects(700, seed=8)
RECORDS_SMALL = make_rects(150, seed=9)


@pytest.fixture
def restore_layout():
    previous = kernel_layout()
    yield
    set_kernel_layout(previous)


def stat_dict(stats):
    """Every deterministic counter the engine reports."""
    return {
        "pairs_output": stats.pairs_output,
        "node_pairs": stats.node_pairs,
        "join_comparisons": stats.comparisons.join,
        "sort_comparisons": stats.comparisons.sort,
        "presort_comparisons": stats.presort_comparisons,
        "disk_reads": stats.io.disk_reads,
        "lru_hits": stats.io.lru_hits,
        "path_hits": stats.io.path_hits,
        "pin_events": stats.io.pin_events,
        "evictions": stats.io.evictions,
    }


def run_both_layouts(spec, records_r=RECORDS_R, records_s=RECORDS_S):
    results = {}
    for layout in ("object", "columnar"):
        set_kernel_layout(layout)
        tree_r = build_rstar(records_r)
        tree_s = build_rstar(records_s)
        results[layout] = spatial_join(tree_r, tree_s, spec)
    return results["object"], results["columnar"]


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_serial_parity(restore_layout, algorithm):
    spec = JoinSpec(algorithm=algorithm, buffer_kb=16)
    by_object, by_columns = run_both_layouts(spec)
    assert by_columns.pair_set() == by_object.pair_set()
    assert stat_dict(by_columns.stats) == stat_dict(by_object.stats)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_workers2_parity(restore_layout, algorithm):
    spec = JoinSpec(algorithm=algorithm, buffer_kb=16, workers=2)
    by_object, by_columns = run_both_layouts(spec)
    assert sorted(by_columns.pairs) == sorted(by_object.pairs)
    assert stat_dict(by_columns.stats) == stat_dict(by_object.stats)


@pytest.mark.parametrize("sort_mode", ["maintained", "on_read"])
def test_sort_mode_parity(restore_layout, sort_mode):
    """Both sorting regimes charge identically under either layout."""
    spec = JoinSpec(algorithm="sj3", buffer_kb=16, sort_mode=sort_mode)
    by_object, by_columns = run_both_layouts(spec)
    assert by_columns.pair_set() == by_object.pair_set()
    assert stat_dict(by_columns.stats) == stat_dict(by_object.stats)


def test_unbalanced_tree_parity(restore_layout):
    """Window mode (different heights) hits the oriented descend path."""
    spec = JoinSpec(algorithm="sj4", buffer_kb=16)
    by_object, by_columns = run_both_layouts(
        spec, records_s=RECORDS_SMALL)
    assert by_columns.pair_set() == by_object.pair_set()
    assert stat_dict(by_columns.stats) == stat_dict(by_object.stats)


def test_presort_parity(restore_layout):
    """The Section 3 presort pass charges identically per layout."""
    spec = JoinSpec(algorithm="sj4", buffer_kb=16, presort=True)
    by_object, by_columns = run_both_layouts(spec)
    assert by_columns.pair_set() == by_object.pair_set()
    assert stat_dict(by_columns.stats) == stat_dict(by_object.stats)
    assert by_columns.stats.presort_comparisons > 0
