"""Tests for the unified JoinSpec configuration object."""

import dataclasses
import pickle

import pytest

from repro.core import (JoinSpec, resolve_spec, spatial_join,
                        spatial_join_stream)
from repro.core.spec import UNSET
from repro.geometry import SpatialPredicate


class TestConstruction:
    def test_defaults_match_paper_recommendation(self):
        spec = JoinSpec()
        assert spec.algorithm == "sj4"
        assert spec.buffer_kb == 128.0
        assert spec.height_policy == "b"
        assert spec.sort_mode == "maintained"
        assert spec.presort is False
        assert spec.use_path_buffer is True
        assert spec.predicate is SpatialPredicate.INTERSECTS
        assert spec.workers == 1

    def test_algorithm_normalized_to_lowercase(self):
        assert JoinSpec(algorithm="SJ3").algorithm == "sj3"

    def test_predicate_accepts_string(self):
        spec = JoinSpec(predicate="contains")
        assert spec.predicate is SpatialPredicate.CONTAINS

    def test_frozen(self):
        spec = JoinSpec()
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.workers = 2

    def test_picklable(self):
        spec = JoinSpec(algorithm="sj5", workers=4,
                        predicate=SpatialPredicate.WITHIN)
        assert pickle.loads(pickle.dumps(spec)) == spec

    @pytest.mark.parametrize("bad", [
        dict(algorithm="sj9"),
        dict(height_policy="d"),
        dict(sort_mode="never"),
        dict(buffer_kb=-1.0),
        dict(workers=0),
        dict(predicate="touches"),
    ])
    def test_invalid_values_rejected(self, bad):
        with pytest.raises(ValueError):
            JoinSpec(**bad)

    @pytest.mark.parametrize("bad_workers", [1.5, "2", True])
    def test_workers_must_be_a_plain_int(self, bad_workers):
        with pytest.raises(TypeError):
            JoinSpec(workers=bad_workers)


class TestResolveSpec:
    def test_kwargs_build_a_spec(self):
        spec = resolve_spec(None, algorithm="sj1", buffer_kb=8.0)
        assert spec == JoinSpec(algorithm="sj1", buffer_kb=8.0)

    def test_unset_kwargs_are_ignored(self):
        spec = resolve_spec(None, algorithm=UNSET, buffer_kb=UNSET)
        assert spec == JoinSpec()

    def test_explicit_spec_passes_through_unchanged(self):
        spec = JoinSpec(algorithm="sj2", workers=3)
        assert resolve_spec(spec, algorithm=UNSET) is spec

    def test_conflicting_kwarg_warns_and_wins(self):
        spec = JoinSpec(algorithm="sj4")
        with pytest.warns(DeprecationWarning):
            resolved = resolve_spec(spec, algorithm="sj1")
        assert resolved.algorithm == "sj1"
        assert spec.algorithm == "sj4"  # original untouched

    def test_equal_kwarg_does_not_warn(self):
        import warnings
        spec = JoinSpec(algorithm="sj4")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            resolved = resolve_spec(spec, algorithm="SJ4")
        assert resolved.algorithm == "sj4"

    def test_unknown_option_rejected(self):
        with pytest.raises(TypeError):
            resolve_spec(None, fanout=3)

    def test_non_spec_rejected(self):
        with pytest.raises(TypeError):
            resolve_spec({"algorithm": "sj4"})


class TestEntryPointsShareTheSpecPath:
    def test_invalid_algorithm_rejected_before_io(self, medium_trees):
        tree_r, tree_s = medium_trees
        with pytest.raises(ValueError):
            spatial_join(tree_r, tree_s, spec=JoinSpec(algorithm="nope"))

    def test_database_join_accepts_spec(self):
        from repro.db import SpatialDatabase
        from repro.geometry import Rect
        db = SpatialDatabase(page_size=1024)
        left = db.create_relation("left")
        right = db.create_relation("right")
        for i in range(40):
            left.insert(Rect(i, 0, i + 1.5, 1))
            right.insert(Rect(i + 0.5, 0, i + 2, 1))
        by_spec = db.join("left", "right",
                          spec=JoinSpec(algorithm="sj1", buffer_kb=8.0))
        assert len(by_spec) > 0


class TestLegacyKeywordAdapter:
    """The pre-1.0 keyword style still works for one release, but every
    use emits a DeprecationWarning and resolves to the same plan as the
    equivalent JoinSpec."""

    def test_legacy_kwargs_warn_and_match_spec(self, medium_trees):
        tree_r, tree_s = medium_trees
        with pytest.warns(DeprecationWarning,
                          match="spatial_join.*deprecated"):
            by_kwargs = spatial_join(tree_r, tree_s,
                                     algorithm="sj3", buffer_kb=16.0)
        by_spec = spatial_join(tree_r, tree_s,
                               spec=JoinSpec(algorithm="sj3",
                                             buffer_kb=16.0))
        assert by_kwargs.pair_set() == by_spec.pair_set()
        assert (by_kwargs.stats.disk_accesses
                == by_spec.stats.disk_accesses)
        assert (by_kwargs.stats.comparisons.join
                == by_spec.stats.comparisons.join)

    def test_legacy_positional_algorithm_warns(self, medium_trees):
        tree_r, tree_s = medium_trees
        with pytest.warns(DeprecationWarning):
            result = spatial_join(tree_r, tree_s, "sj1")
        reference = spatial_join(tree_r, tree_s,
                                 spec=JoinSpec(algorithm="sj1"))
        assert result.pair_set() == reference.pair_set()

    def test_legacy_stream_kwargs_warn(self, medium_trees):
        tree_r, tree_s = medium_trees
        pairs = []
        with pytest.warns(DeprecationWarning,
                          match="spatial_join_stream"):
            spatial_join_stream(tree_r, tree_s,
                                lambda a, b: pairs.append((a, b)),
                                buffer_kb=16.0)
        reference = spatial_join(tree_r, tree_s,
                                 spec=JoinSpec(buffer_kb=16.0))
        assert set(pairs) == reference.pair_set()

    def test_legacy_database_join_warns(self):
        from repro.db import SpatialDatabase
        from repro.geometry import Rect
        db = SpatialDatabase(page_size=1024)
        left = db.create_relation("left")
        right = db.create_relation("right")
        for i in range(40):
            left.insert(Rect(i, 0, i + 1.5, 1))
            right.insert(Rect(i + 0.5, 0, i + 2, 1))
        with pytest.warns(DeprecationWarning,
                          match="SpatialDatabase.join"):
            by_kwargs = db.join("left", "right", buffer_kb=8.0)
        by_spec = db.join("left", "right", spec=JoinSpec(buffer_kb=8.0))
        assert by_kwargs.pair_set() == by_spec.pair_set()

    def test_spec_plus_legacy_kwargs_warns(self, medium_trees):
        tree_r, tree_s = medium_trees
        with pytest.warns(DeprecationWarning):
            result = spatial_join(tree_r, tree_s,
                                  spec=JoinSpec(algorithm="sj1"),
                                  buffer_kb=8.0)
        assert result.plan.algorithm == "sj1"
        assert result.plan.buffer_kb == 8.0

    def test_plan_plus_legacy_kwargs_rejected(self, medium_trees):
        from repro.plan import plan_join
        tree_r, tree_s = medium_trees
        plan = plan_join(tree_r, tree_s, spec=JoinSpec(algorithm="sj1"))
        with pytest.raises(TypeError):
            spatial_join(tree_r, tree_s, plan, buffer_kb=8.0)

    def test_unknown_kwarg_rejected(self, medium_trees):
        tree_r, tree_s = medium_trees
        with pytest.warns(DeprecationWarning), pytest.raises(TypeError):
            spatial_join(tree_r, tree_s, fanout=3)

    def test_execution_plan_accepted_as_spec(self, medium_trees):
        from repro.plan import plan_join
        tree_r, tree_s = medium_trees
        plan = plan_join(tree_r, tree_s,
                         spec=JoinSpec(algorithm="sj3", buffer_kb=16.0))
        by_plan = spatial_join(tree_r, tree_s, plan)
        by_spec = spatial_join(tree_r, tree_s,
                               spec=JoinSpec(algorithm="sj3",
                                             buffer_kb=16.0))
        assert by_plan.pair_set() == by_spec.pair_set()
