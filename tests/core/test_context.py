"""Unit tests for the join context (buffers, sorting regimes)."""

import pytest

from repro.core import (JoinContext, R_SIDE, S_SIDE, counted_sort_cost,
                        counted_sort_inplace, presort_trees)
from repro.geometry import Rect
from repro.rtree import Entry
from tests.conftest import build_rstar, make_rects


@pytest.fixture
def trees():
    return (build_rstar(make_rects(400, seed=71), page_size=256),
            build_rstar(make_rects(400, seed=72), page_size=256))


class TestConstruction:
    def test_mismatched_page_sizes_rejected(self):
        a = build_rstar(make_rects(50, seed=1), page_size=1024)
        b = build_rstar(make_rects(50, seed=2), page_size=2048)
        with pytest.raises(ValueError):
            JoinContext(a, b)

    def test_unknown_sort_mode_rejected(self, trees):
        with pytest.raises(ValueError):
            JoinContext(*trees, sort_mode="sometimes")

    def test_buffer_frames_from_kb(self, trees):
        ctx = JoinContext(*trees, buffer_kb=8)
        assert ctx.manager.lru.frames == 32  # 8 KB of 256-byte pages


class TestReads:
    def test_read_root_counts_one_access(self, trees):
        ctx = JoinContext(*trees, buffer_kb=8)
        ctx.read_root(R_SIDE)
        assert ctx.stats.io.disk_reads == 1

    def test_depth_of(self, trees):
        ctx = JoinContext(*trees)
        tree_r = trees[0]
        assert ctx.depth_of(R_SIDE, tree_r.root.level) == 0
        assert ctx.depth_of(R_SIDE, 0) == tree_r.height - 1


class TestSortedEntries:
    def test_maintained_mode_sorts_once(self, trees):
        ctx = JoinContext(*trees, sort_mode="maintained")
        node = ctx.read_root(R_SIDE)
        first = ctx.sorted_entries(R_SIDE, node)
        charged = ctx.stats.presort_comparisons
        assert charged > 0
        again = ctx.sorted_entries(R_SIDE, node)
        assert ctx.stats.presort_comparisons == charged
        assert first is again
        xls = [e.rect.xl for e in first]
        assert xls == sorted(xls)

    def test_on_read_mode_charges_per_disk_read(self, trees):
        ctx = JoinContext(*trees, buffer_kb=0, sort_mode="on_read")
        tree_r = trees[0]
        root = ctx.read_root(R_SIDE)
        child_id = root.entries[0].ref
        node = ctx.read(R_SIDE, child_id, 1)
        ctx.sorted_entries(R_SIDE, node)
        first_cost = ctx.stats.comparisons.sort
        assert first_cost > 0
        # Same page again while cached copy valid: no re-charge.
        ctx.sorted_entries(R_SIDE, node)
        assert ctx.stats.comparisons.sort == first_cost
        # Force a re-read from disk (zero buffer, different page between).
        other_id = root.entries[1].ref
        ctx.read(R_SIDE, other_id, 1)
        node = ctx.read(R_SIDE, child_id, 1)
        ctx.sorted_entries(R_SIDE, node)
        assert ctx.stats.comparisons.sort > first_cost

    def test_on_read_cache_invalidated_across_mutation(self, trees):
        """A sorted copy must die with its page's buffer residency.

        Regression: mutate a page (as a relation insert/delete does),
        evict it, read it back from disk — the context must rebuild
        the sorted view instead of serving the pre-mutation copy.
        """
        ctx = JoinContext(*trees, buffer_kb=0, sort_mode="on_read")
        root = ctx.read_root(R_SIDE)
        child_id = root.entries[0].ref
        node = ctx.read(R_SIDE, child_id, 1)
        stale = ctx.sorted_entries(R_SIDE, node)
        # Mutate the stored page the way a tree insert does.
        added = Entry(Rect(-5.0, -5.0, -4.0, -4.0), 999_999)
        node.entries.append(added)
        # Evict (zero buffer: reading a sibling displaces the path
        # slot), then re-read from disk.
        ctx.read(R_SIDE, root.entries[1].ref, 1)
        reread = ctx.read(R_SIDE, child_id, 1)
        fresh = ctx.sorted_entries(R_SIDE, reread)
        assert added not in stale
        assert added in fresh
        assert fresh is not stale
        xls = [e.rect.xl for e in fresh]
        assert xls == sorted(xls)

    def test_on_read_does_not_mutate_node(self, trees):
        ctx = JoinContext(*trees, sort_mode="on_read")
        node = ctx.read_root(R_SIDE)
        before = list(node.entries)
        ctx.sorted_entries(R_SIDE, node)
        assert node.entries == before
        assert not node.sorted_by_xl


class TestCountedSort:
    def test_inplace_sorts_and_counts(self):
        entries = [Entry(Rect(x, 0, x + 1, 1), x) for x in (5, 1, 3, 2, 4)]
        count = counted_sort_inplace(entries)
        assert [e.rect.xl for e in entries] == [1, 2, 3, 4, 5]
        assert count > 0

    def test_cost_leaves_list_untouched(self):
        entries = [Entry(Rect(x, 0, x + 1, 1), x) for x in (5, 1, 3)]
        order_before = list(entries)
        cost = counted_sort_cost(entries)
        assert entries == order_before
        assert cost > 0

    def test_empty_and_single(self):
        assert counted_sort_inplace([]) == 0
        assert counted_sort_inplace(
            [Entry(Rect(0, 0, 1, 1), 0)]) == 0


def test_presort_trees_counts_everything(trees):
    ctx = JoinContext(*trees)
    presort_trees(ctx)
    assert ctx.stats.presort_comparisons > 0
    for tree in trees:
        for node in tree.iter_nodes():
            assert node.sorted_by_xl
    # Idempotent: second presort adds nothing.
    charged = ctx.stats.presort_comparisons
    presort_trees(ctx)
    assert ctx.stats.presort_comparisons == charged
