"""Unit tests for the buffered window-query engine."""

from repro.core import WindowQueryEngine
from repro.geometry import Rect
from tests.conftest import build_rstar, make_rects


def test_matches_tree_query():
    records = make_rects(800, seed=81)
    tree = build_rstar(records, page_size=256)
    engine = WindowQueryEngine(tree, buffer_kb=8)
    window = Rect(100, 100, 400, 400)
    result = engine.query(window)
    assert sorted(result.refs) == sorted(tree.window_query(window))
    assert result.comparisons.join > 0
    assert result.io.disk_reads > 0


def test_warm_buffer_reduces_io():
    records = make_rects(800, seed=82)
    tree = build_rstar(records, page_size=256)
    engine = WindowQueryEngine(tree, buffer_kb=64)
    window = Rect(200, 200, 300, 300)
    cold = engine.query(window)
    warm = engine.query(window)
    assert warm.io.disk_reads < cold.io.disk_reads


def test_zero_buffer_still_counts_path_hits():
    records = make_rects(800, seed=83)
    tree = build_rstar(records, page_size=256)
    engine = WindowQueryEngine(tree, buffer_kb=0)
    result = engine.query(Rect(0, 0, 1000, 1000))
    # A full scan revisits the root once per path, served by the path
    # buffer, never twice from disk.
    assert result.io.disk_reads <= sum(1 for _ in tree.iter_nodes())


def test_empty_result():
    records = make_rects(100, seed=84)
    tree = build_rstar(records)
    engine = WindowQueryEngine(tree)
    result = engine.query(Rect(5000, 5000, 5001, 5001))
    assert result.refs == []
    assert len(result) == 0


def test_per_query_counters_are_deltas():
    records = make_rects(500, seed=85)
    tree = build_rstar(records, page_size=256)
    engine = WindowQueryEngine(tree, buffer_kb=8)
    first = engine.query(Rect(0, 0, 500, 500))
    second = engine.query(Rect(500, 500, 1000, 1000))
    # Each result reports only its own work, not cumulative counts.
    total_logical = (first.io.disk_reads + first.io.lru_hits
                     + first.io.path_hits + second.io.disk_reads
                     + second.io.lru_hits + second.io.path_hits)
    stats = engine.manager.stats
    assert total_logical == (stats.disk_reads + stats.lru_hits
                             + stats.path_hits)
