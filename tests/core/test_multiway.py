"""Tests for the multiway spatial join (extension of Section 2.1)."""

import pytest

from repro.core.multiway import multiway_spatial_join
from repro.geometry import Rect
from repro.rtree import RStarTree, RTreeParams
from tests.conftest import build_rstar, make_rects


def brute_triples(a, b, c):
    """Oracle: all (i, j, k) with a common intersection point."""
    result = set()
    for ra, ia in a:
        for rb, ib in b:
            common = ra.intersection(rb)
            if common is None:
                continue
            for rc, ic in c:
                if common.intersects(rc):
                    result.add((ia, ib, ic))
    return result


@pytest.fixture(scope="module")
def three_way_data():
    a = make_rects(250, seed=401, max_extent=40.0)
    b = make_rects(250, seed=402, max_extent=40.0)
    c = make_rects(250, seed=403, max_extent=40.0)
    return a, b, c


@pytest.fixture(scope="module")
def three_trees(three_way_data):
    return tuple(build_rstar(records, page_size=256)
                 for records in three_way_data)


def test_three_way_matches_brute_force(three_way_data, three_trees):
    a, b, c = three_way_data
    result = multiway_spatial_join(three_trees, buffer_kb=32)
    assert result.tuple_set() == brute_triples(a, b, c)
    assert result.stats.pairs_output == len(result)


def test_two_way_degenerates_to_binary_join(three_way_data, three_trees):
    from repro.core import nested_loop_join
    a, b, _ = three_way_data
    result = multiway_spatial_join(three_trees[:2], buffer_kb=32)
    oracle = nested_loop_join(a, b).pair_set()
    assert result.tuple_set() == oracle


def test_four_way_self_join_contains_diagonal(three_way_data):
    a, _, _ = three_way_data
    trees = tuple(build_rstar(a, page_size=256) for _ in range(4))
    result = multiway_spatial_join(trees, buffer_kb=64)
    tuples = result.tuple_set()
    for _, ref in a:
        assert (ref, ref, ref, ref) in tuples


def test_different_heights(three_way_data):
    a, b, _ = three_way_data
    big = make_rects(4000, seed=404, max_extent=30.0)
    tree_big = build_rstar(big, page_size=256)
    tree_a = build_rstar(a[:150], page_size=256)
    tree_b = build_rstar(b[:150], page_size=256)
    assert tree_big.height > tree_a.height
    result = multiway_spatial_join((tree_big, tree_a, tree_b),
                                   buffer_kb=32)
    assert result.tuple_set() == brute_triples(big, a[:150], b[:150])


def test_disjoint_world_early_exit():
    a = [(Rect(i, 0, i + 1, 1), i) for i in range(50)]
    b = [(Rect(i + 1000, 0, i + 1001, 1), i) for i in range(50)]
    tree_a = build_rstar(a)
    tree_b = build_rstar(b)
    result = multiway_spatial_join((tree_a, tree_b, tree_a))
    assert result.tuples == []
    # Only the roots were read.
    assert result.stats.disk_accesses == 3


def test_counters_populated(three_trees):
    result = multiway_spatial_join(three_trees, buffer_kb=32)
    assert result.stats.comparisons.join > 0
    assert result.stats.disk_accesses > 0
    assert result.stats.algorithm == "multiway-3"


def test_validation():
    tree = RStarTree(RTreeParams.from_page_size(1024))
    with pytest.raises(ValueError):
        multiway_spatial_join((tree,))
    other = RStarTree(RTreeParams.from_page_size(2048))
    with pytest.raises(ValueError):
        multiway_spatial_join((tree, other))


def test_empty_tree_gives_empty_result(three_trees):
    empty = RStarTree(RTreeParams.from_page_size(256))
    result = multiway_spatial_join((three_trees[0], empty,
                                    three_trees[1]))
    assert result.tuples == []
