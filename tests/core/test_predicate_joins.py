"""Tests for joins with non-intersection predicates (Section 2.1:
"other spatial operators than intersection, e.g. containment")."""

import pytest

from repro.core import spatial_join
from repro.geometry import SpatialPredicate
from tests.conftest import build_rstar, make_rects
from repro.core import JoinSpec

ALGORITHMS = ("sj1", "sj2", "sj3", "sj4", "sj5")


@pytest.fixture(scope="module")
def containment_data():
    # Big rectangles on the R side, small ones on the S side, so
    # containment pairs actually exist.
    left = make_rects(1200, seed=201, max_extent=60.0)
    right = make_rects(1200, seed=202, max_extent=4.0)
    return left, right


@pytest.fixture(scope="module")
def containment_trees(containment_data):
    left, right = containment_data
    return build_rstar(left, page_size=256), build_rstar(right,
                                                         page_size=256)


def brute(left, right, predicate):
    return {(i, j) for r, i in left for s, j in right
            if predicate.evaluate(r, s)}


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("predicate", [SpatialPredicate.CONTAINS,
                                       SpatialPredicate.WITHIN])
def test_predicate_join_matches_brute_force(containment_data,
                                            containment_trees,
                                            algorithm, predicate):
    left, right = containment_data
    tree_r, tree_s = containment_trees
    result = spatial_join(tree_r, tree_s,
                          spec=JoinSpec(algorithm=algorithm, buffer_kb=16, predicate=predicate))
    assert result.pair_set() == brute(left, right, predicate)


def test_containment_is_subset_of_intersection(containment_trees):
    tree_r, tree_s = containment_trees
    intersect = spatial_join(tree_r, tree_s,
                             spec=JoinSpec(algorithm="sj4", buffer_kb=16)).pair_set()
    contains = spatial_join(tree_r, tree_s,
                            spec=JoinSpec(algorithm="sj4", buffer_kb=16, predicate=SpatialPredicate.CONTAINS)).pair_set()
    assert contains <= intersect
    assert contains    # the data was built so containment pairs exist


def test_contains_and_within_are_transposes(containment_data):
    left, right = containment_data
    tree_r = build_rstar(left, page_size=256)
    tree_s = build_rstar(right, page_size=256)
    contains = spatial_join(tree_r, tree_s,
                            spec=JoinSpec(algorithm="sj4", predicate=SpatialPredicate.CONTAINS)).pair_set()
    within = spatial_join(tree_s, tree_r,
                          spec=JoinSpec(algorithm="sj4", predicate=SpatialPredicate.WITHIN)).pair_set()
    assert {(b, a) for a, b in within} == contains


@pytest.mark.parametrize("policy", ["a", "b", "c"])
def test_predicate_join_with_different_heights(policy):
    # Deep R side with big rects, shallow S side with small rects.
    left = make_rects(5000, seed=203, max_extent=40.0)
    right = make_rects(200, seed=204, max_extent=3.0)
    tree_r = build_rstar(left, page_size=256)
    tree_s = build_rstar(right, page_size=256)
    assert tree_r.height > tree_s.height
    expected = brute(left, right, SpatialPredicate.CONTAINS)
    result = spatial_join(tree_r, tree_s,
                          spec=JoinSpec(algorithm="sj4", buffer_kb=16, height_policy=policy, predicate=SpatialPredicate.CONTAINS))
    assert result.pair_set() == expected
    assert expected  # non-trivial


def test_predicate_comparisons_counted(containment_trees):
    tree_r, tree_s = containment_trees
    plain = spatial_join(tree_r, tree_s,
                         spec=JoinSpec(algorithm="sj2", buffer_kb=16))
    contains = spatial_join(tree_r, tree_s,
                            spec=JoinSpec(algorithm="sj2", buffer_kb=16, predicate=SpatialPredicate.CONTAINS))
    # The extra containment checks on candidate pairs cost comparisons.
    assert contains.stats.comparisons.join > plain.stats.comparisons.join


def test_counted_predicate_semantics():
    from repro.geometry import ComparisonCounter, Rect
    from repro.geometry.predicates import contains_count, within_count
    c = ComparisonCounter()
    assert contains_count(Rect(0, 0, 10, 10), Rect(1, 1, 2, 2), c)
    assert c.join == 4
    c.reset()
    assert not contains_count(Rect(5, 0, 10, 10), Rect(1, 1, 2, 2), c)
    assert c.join == 1
    c.reset()
    assert within_count(Rect(1, 1, 2, 2), Rect(0, 0, 10, 10), c)
    assert c.join == 4


def test_evaluate_counted_agrees_with_plain():
    import random
    from repro.geometry import ComparisonCounter, Rect
    rng = random.Random(8)
    counter = ComparisonCounter()
    for _ in range(300):
        a = Rect(rng.random() * 5, rng.random() * 5,
                 rng.random() * 5 + 5, rng.random() * 5 + 5)
        b = Rect(rng.random() * 5, rng.random() * 5,
                 rng.random() * 5 + 5, rng.random() * 5 + 5)
        for predicate in SpatialPredicate:
            assert predicate.evaluate_counted(a, b, counter) == \
                predicate.evaluate(a, b)
