"""Tests for the within-distance join (extension)."""

import pytest

from repro.core.distance import distance_join, rect_mindist
from repro.geometry import Rect
from tests.conftest import build_rstar, make_rects
from repro.core import JoinSpec


class TestRectMindist:
    def test_intersecting_is_zero(self):
        assert rect_mindist(Rect(0, 0, 2, 2), Rect(1, 1, 3, 3)) == 0.0

    def test_horizontal_gap(self):
        assert rect_mindist(Rect(0, 0, 1, 1), Rect(4, 0, 5, 1)) == 3.0

    def test_vertical_gap(self):
        assert rect_mindist(Rect(0, 0, 1, 1), Rect(0, 3, 1, 4)) == 2.0

    def test_diagonal_gap(self):
        assert rect_mindist(Rect(0, 0, 1, 1), Rect(4, 5, 6, 7)) == 5.0

    def test_symmetry(self):
        a, b = Rect(0, 0, 1, 1), Rect(7, 2, 8, 3)
        assert rect_mindist(a, b) == rect_mindist(b, a)

    def test_touching_is_zero(self):
        assert rect_mindist(Rect(0, 0, 1, 1), Rect(1, 0, 2, 1)) == 0.0


def brute_near(left, right, d):
    return {(i, j) for a, i in left for b, j in right
            if rect_mindist(a, b) <= d}


class TestDistanceJoin:
    @pytest.fixture(scope="class")
    def data(self):
        left = make_rects(900, seed=801)
        right = make_rects(900, seed=802)
        return left, right, build_rstar(left, 256), build_rstar(right, 256)

    @pytest.mark.parametrize("distance", [0.0, 5.0, 25.0, 120.0])
    def test_matches_brute_force(self, data, distance):
        left, right, tree_r, tree_s = data
        result = distance_join(tree_r, tree_s, distance, buffer_kb=16)
        assert result.pair_set() == brute_near(left, right, distance)

    def test_zero_distance_equals_intersection_join(self, data):
        from repro.core import spatial_join
        _, _, tree_r, tree_s = data
        near = distance_join(tree_r, tree_s, 0.0, buffer_kb=16)
        intersect = spatial_join(tree_r, tree_s,
                                 spec=JoinSpec(algorithm="sj4", buffer_kb=16))
        assert near.pair_set() == intersect.pair_set()

    def test_monotone_in_distance(self, data):
        _, _, tree_r, tree_s = data
        small = distance_join(tree_r, tree_s, 5.0).pair_set()
        large = distance_join(tree_r, tree_s, 50.0).pair_set()
        assert small <= large

    def test_different_heights(self):
        big = make_rects(5000, seed=803)
        small = make_rects(150, seed=804)
        tree_big = build_rstar(big, 256)
        tree_small = build_rstar(small, 256)
        assert tree_big.height > tree_small.height
        for pair in ((tree_big, tree_small, big, small),
                     (tree_small, tree_big, small, big)):
            tree_l, tree_r_, recs_l, recs_r = pair
            result = distance_join(tree_l, tree_r_, 20.0, buffer_kb=16)
            assert result.pair_set() == brute_near(recs_l, recs_r, 20.0)

    def test_negative_distance_rejected(self, data):
        _, _, tree_r, tree_s = data
        with pytest.raises(ValueError):
            distance_join(tree_r, tree_s, -1.0)

    def test_counters_populated(self, data):
        _, _, tree_r, tree_s = data
        result = distance_join(tree_r, tree_s, 10.0, buffer_kb=16)
        assert result.stats.comparisons.join > 0
        assert result.stats.disk_accesses > 0
        assert result.stats.algorithm == "distance<=10"

    def test_empty_tree(self, data):
        from repro.rtree import RStarTree, RTreeParams
        _, _, tree_r, _ = data
        empty = RStarTree(RTreeParams.from_page_size(256))
        assert distance_join(tree_r, empty, 10.0).pairs == []
