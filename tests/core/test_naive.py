"""Unit tests for the baseline joins."""

from repro.core import (index_nested_loop_join, nested_loop_join,
                        plane_sweep_join)
from repro.geometry import Rect
from tests.conftest import build_rstar, make_rects


def test_nested_loop_simple():
    left = [(Rect(0, 0, 2, 2), 1), (Rect(10, 10, 11, 11), 2)]
    right = [(Rect(1, 1, 3, 3), 7), (Rect(50, 50, 51, 51), 8)]
    result = nested_loop_join(left, right)
    assert result.pair_set() == {(1, 7)}
    assert result.stats.comparisons.join > 0
    assert result.stats.pairs_output == 1


def test_plane_sweep_matches_nested_loop():
    left = make_rects(400, seed=91)
    right = make_rects(400, seed=92)
    nested = nested_loop_join(left, right)
    sweep = plane_sweep_join(left, right)
    assert sweep.pair_set() == nested.pair_set()
    assert sweep.stats.comparisons.sort > 0
    assert sweep.stats.comparisons.join < nested.stats.comparisons.join


def test_index_nested_loop_matches(medium_records_pair, medium_trees):
    left, right = medium_records_pair
    _, tree_s = medium_trees
    outer = left[:300]
    result = index_nested_loop_join(outer, tree_s, buffer_kb=32)
    expected = nested_loop_join(outer, right).pair_set()
    assert result.pair_set() == expected
    assert result.stats.disk_accesses > 0


def test_empty_inputs():
    assert nested_loop_join([], []).pairs == []
    assert plane_sweep_join([], make_rects(5)).pairs == []
