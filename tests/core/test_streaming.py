"""Tests for the streaming join API."""

import pytest

from repro.core import spatial_join, spatial_join_stream
from repro.geometry import SpatialPredicate
from repro.core import JoinSpec


def test_streaming_delivers_same_pairs(medium_trees):
    tree_r, tree_s = medium_trees
    collected = []
    stats = spatial_join_stream(tree_r, tree_s, lambda a,
                                b: collected.append((a, b)),
                                spec=JoinSpec(buffer_kb=32))
    reference = spatial_join(tree_r, tree_s, spec=JoinSpec(buffer_kb=32))
    assert set(collected) == reference.pair_set()
    assert stats.pairs_output == len(collected)


def test_streaming_counters_match_materialized(medium_trees):
    tree_r, tree_s = medium_trees
    stats = spatial_join_stream(tree_r, tree_s, lambda a, b: None,
                                spec=JoinSpec(algorithm="sj1", buffer_kb=8))
    reference = spatial_join(tree_r, tree_s,
                             spec=JoinSpec(algorithm="sj1", buffer_kb=8))
    assert stats.disk_accesses == reference.stats.disk_accesses
    assert stats.comparisons.join == reference.stats.comparisons.join


@pytest.mark.parametrize("algorithm", ["sj1", "sj3", "sj5"])
def test_streaming_all_algorithms(medium_trees, algorithm):
    tree_r, tree_s = medium_trees
    count = 0

    def on_pair(a, b):
        nonlocal count
        count += 1

    stats = spatial_join_stream(tree_r, tree_s, on_pair,
                                spec=JoinSpec(algorithm=algorithm, buffer_kb=32))
    assert count == stats.pairs_output > 0


def test_streaming_sj5_applies_zorder(medium_trees):
    """Regression: the z-grid must be set up on the streaming path too,
    so SJ5's schedule (and its sort-comparison charge) appears."""
    tree_r, tree_s = medium_trees
    stats = spatial_join_stream(tree_r, tree_s, lambda a, b: None,
                                spec=JoinSpec(algorithm="sj5", buffer_kb=32))
    reference = spatial_join(tree_r, tree_s,
                             spec=JoinSpec(algorithm="sj5", buffer_kb=32))
    assert stats.comparisons.sort == reference.stats.comparisons.sort
    assert stats.comparisons.sort > 0
    assert stats.disk_accesses == reference.stats.disk_accesses


def test_streaming_with_predicate(medium_trees):
    tree_r, tree_s = medium_trees
    collected = []
    spatial_join_stream(tree_r, tree_s, lambda a, b: collected.append((a, b)),
                        spec=JoinSpec(predicate=SpatialPredicate.CONTAINS, buffer_kb=32))
    reference = spatial_join(tree_r, tree_s,
                             spec=JoinSpec(buffer_kb=32, predicate=SpatialPredicate.CONTAINS))
    assert set(collected) == reference.pair_set()


@pytest.mark.parametrize("options", [
    dict(use_path_buffer=False),
    dict(presort=True),
    dict(use_path_buffer=False, presort=True),
])
def test_streaming_honors_path_buffer_and_presort(medium_records_pair,
                                                  options):
    """Regression: spatial_join_stream used to silently drop
    ``use_path_buffer`` and ``presort``, so streaming and materialized
    runs of the same configuration reported different I/O.  Both now
    flow through the shared JoinSpec path.  Fresh trees per run because
    presort physically sorts the shared fixture trees."""
    from tests.conftest import build_rstar
    left, right = medium_records_pair

    def fresh():
        return build_rstar(left[:1000]), build_rstar(right[:1000])

    spec = JoinSpec(buffer_kb=16, **options)
    stream_stats = spatial_join_stream(*fresh(), lambda a, b: None,
                                       spec=spec)
    reference = spatial_join(*fresh(), spec=spec)
    assert stream_stats.disk_accesses == reference.stats.disk_accesses
    assert (stream_stats.io.path_hits
            == reference.stats.io.path_hits)
    assert (stream_stats.presort_comparisons
            == reference.stats.presort_comparisons)
    assert (stream_stats.comparisons.join
            == reference.stats.comparisons.join)
    if options.get("presort"):
        assert stream_stats.presort_comparisons > 0
    if not options.get("use_path_buffer", True):
        assert stream_stats.io.path_hits == 0


def test_streaming_pipeline_early_use(unbalanced_trees):
    """Pairs arrive during the traversal, usable immediately — e.g.
    keeping only a running aggregate instead of the full result."""
    tree_r, tree_s, _, _ = unbalanced_trees
    per_s_counts: dict[int, int] = {}
    spatial_join_stream(tree_r, tree_s, lambda a,
                        b: per_s_counts.__setitem__( b, per_s_counts.get(b, 0) + 1),
                        spec=JoinSpec(buffer_kb=16))
    reference = spatial_join(tree_r, tree_s, spec=JoinSpec(buffer_kb=16))
    assert sum(per_s_counts.values()) == len(reference)
