"""Unit tests for the node-pair kernels of Section 4.2."""

import random

import pytest

from repro.core import (nested_loop_pairs, restrict_entries,
                        sorted_intersection_test)
from repro.geometry import ComparisonCounter, Rect
from repro.rtree import Entry


def entries_from(rects):
    return [Entry(r, i) for i, r in enumerate(rects)]


def random_entries(n, seed, span=100.0, extent=15.0):
    rng = random.Random(seed)
    out = []
    for i in range(n):
        x, y = rng.random() * span, rng.random() * span
        out.append(Entry(Rect(x, y, x + rng.random() * extent,
                              y + rng.random() * extent), i))
    return out


def brute_pairs(left, right):
    return {(a.ref, b.ref) for a in left for b in right
            if a.rect.intersects(b.rect)}


class TestNestedLoop:
    def test_finds_all_pairs(self):
        left = random_entries(40, 1)
        right = random_entries(40, 2)
        counter = ComparisonCounter()
        pairs = nested_loop_pairs(left, right, counter)
        assert {(a.ref, b.ref) for a, b in pairs} == \
            brute_pairs(left, right)

    def test_s_major_order(self):
        left = entries_from([Rect(0, 0, 10, 10), Rect(5, 5, 15, 15)])
        right = entries_from([Rect(1, 1, 2, 2), Rect(6, 6, 7, 7)])
        counter = ComparisonCounter()
        pairs = nested_loop_pairs(left, right, counter)
        # Outer loop over S (the paper's FOR Es ... FOR Er).
        s_order = [es.ref for _, es in pairs]
        assert s_order == sorted(s_order)

    def test_comparison_count_bounds(self):
        left = random_entries(30, 3)
        right = random_entries(30, 4)
        counter = ComparisonCounter()
        nested_loop_pairs(left, right, counter)
        assert 30 * 30 <= counter.join <= 4 * 30 * 30

    def test_counts_match_intersect_count_semantics(self):
        from repro.geometry import intersect_count
        left = random_entries(25, 5)
        right = random_entries(25, 6)
        nested = ComparisonCounter()
        nested_loop_pairs(left, right, nested)
        reference = ComparisonCounter()
        for es in right:
            for er in left:
                intersect_count(er.rect, es.rect, reference)
        assert nested.join == reference.join

    def test_empty_inputs(self):
        counter = ComparisonCounter()
        assert nested_loop_pairs([], random_entries(5, 7), counter) == []
        assert counter.join == 0


class TestRestrictEntries:
    def test_keeps_only_intersecting(self):
        entries = entries_from([Rect(0, 0, 1, 1), Rect(5, 5, 6, 6),
                                Rect(2, 2, 3, 3)])
        counter = ComparisonCounter()
        marked = restrict_entries(entries, Rect(0, 0, 3, 3), counter)
        assert [e.ref for e in marked] == [0, 2]

    def test_preserves_order(self):
        entries = sorted(random_entries(50, 8), key=lambda e: e.rect.xl)
        counter = ComparisonCounter()
        marked = restrict_entries(entries, Rect(20, 20, 70, 70), counter)
        xls = [e.rect.xl for e in marked]
        assert xls == sorted(xls)

    def test_charges_scan_cost(self):
        entries = random_entries(50, 9)
        counter = ComparisonCounter()
        restrict_entries(entries, Rect(0, 0, 100, 100), counter)
        assert 50 <= counter.join <= 200


class TestSortedIntersectionTest:
    def test_matches_brute_force(self):
        for seed in range(5):
            left = sorted(random_entries(60, seed * 2),
                          key=lambda e: e.rect.xl)
            right = sorted(random_entries(60, seed * 2 + 1),
                           key=lambda e: e.rect.xl)
            counter = ComparisonCounter()
            pairs = sorted_intersection_test(left, right, counter)
            assert {(a.ref, b.ref) for a, b in pairs} == \
                brute_pairs(left, right)

    def test_no_duplicate_pairs(self):
        left = sorted(random_entries(80, 30, extent=40.0),
                      key=lambda e: e.rect.xl)
        right = sorted(random_entries(80, 31, extent=40.0),
                       key=lambda e: e.rect.xl)
        counter = ComparisonCounter()
        pairs = sorted_intersection_test(left, right, counter)
        assert len(pairs) == len({(a.ref, b.ref) for a, b in pairs})

    def test_paper_example_figure5(self):
        # Figure 5: sweep stops at r1, s1, r2, s2, r3 and tests the pairs
        # r1-s1, s1-r2, r2-s2, r2-s3, r3-s3.
        r = [Entry(Rect(0, 0, 3, 2), 100),     # r1
             Entry(Rect(2, 3, 5, 5), 101),     # r2
             Entry(Rect(6, 1, 8, 3), 102)]     # r3
        s = [Entry(Rect(1, 1, 4, 4), 200),     # s1
             Entry(Rect(4.5, 2.5, 7, 4), 201),  # s2
             Entry(Rect(6.5, 0, 9, 2), 202)]   # s3
        counter = ComparisonCounter()
        pairs = sorted_intersection_test(r, s, counter)
        found = {(a.ref, b.ref) for a, b in pairs}
        assert (100, 200) in found and (101, 200) in found
        assert (102, 202) in found

    def test_cheaper_than_nested_loop(self):
        left = sorted(random_entries(100, 32), key=lambda e: e.rect.xl)
        right = sorted(random_entries(100, 33), key=lambda e: e.rect.xl)
        sweep_counter = ComparisonCounter()
        sorted_intersection_test(left, right, sweep_counter)
        nested_counter = ComparisonCounter()
        nested_loop_pairs(left, right, nested_counter)
        assert sweep_counter.join < nested_counter.join

    def test_sweep_order_is_by_x(self):
        left = sorted(random_entries(40, 34), key=lambda e: e.rect.xl)
        right = sorted(random_entries(40, 35), key=lambda e: e.rect.xl)
        counter = ComparisonCounter()
        pairs = sorted_intersection_test(left, right, counter)
        # The sweep line position at which each pair is discovered is
        # the smaller of the two xl values (the sweep rectangle's own
        # xl); it must be non-decreasing along the schedule.
        xs = [min(a.rect.xl, b.rect.xl) for a, b in pairs]
        assert xs == sorted(xs)

    def test_empty_sequences(self):
        counter = ComparisonCounter()
        assert sorted_intersection_test([], [], counter) == []
        assert sorted_intersection_test(
            random_entries(3, 36), [], counter) == []

    def test_identical_sequences(self):
        left = sorted(random_entries(30, 37), key=lambda e: e.rect.xl)
        counter = ComparisonCounter()
        pairs = sorted_intersection_test(left, list(left), counter)
        refs = {(a.ref, b.ref) for a, b in pairs}
        for entry in left:
            assert (entry.ref, entry.ref) in refs
