"""Tests for joining trees of different height (Section 4.4)."""

import pytest

from repro.core import nested_loop_join, spatial_join
from repro.core import JoinSpec

ALGORITHMS = ("sj1", "sj2", "sj3", "sj4", "sj5")
POLICIES = ("a", "b", "c")


@pytest.fixture(scope="module")
def oracle(unbalanced_trees):
    _, _, left, right = unbalanced_trees
    return nested_loop_join(left, right).pair_set()


def test_heights_actually_differ(unbalanced_trees):
    tree_r, tree_s, _, _ = unbalanced_trees
    assert tree_r.height > tree_s.height


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("policy", POLICIES)
def test_all_policy_algorithm_combos_match_oracle(
        unbalanced_trees, oracle, algorithm, policy):
    tree_r, tree_s, _, _ = unbalanced_trees
    result = spatial_join(tree_r, tree_s,
                          spec=JoinSpec(algorithm=algorithm, buffer_kb=16, height_policy=policy))
    assert result.pair_set() == oracle


@pytest.mark.parametrize("policy", POLICIES)
def test_swapped_sides_match_oracle(unbalanced_trees, oracle, policy):
    """The deep tree may be on either side of the join."""
    tree_r, tree_s, _, _ = unbalanced_trees
    result = spatial_join(tree_s, tree_r,
                          spec=JoinSpec(algorithm="sj4", buffer_kb=16, height_policy=policy))
    assert {(b, a) for a, b in result.pair_set()} == oracle


def test_policy_b_reads_at_most_policy_a(unbalanced_trees):
    """Batching (b) reads every subtree page at most once per batch, so
    it can never need more reads than one query per pair (a)."""
    tree_r, tree_s, _, _ = unbalanced_trees
    for buffer_kb in (0, 8, 64):
        a = spatial_join(tree_r, tree_s,
                         spec=JoinSpec(algorithm="sj4", buffer_kb=buffer_kb, height_policy="a"))
        b = spatial_join(tree_r, tree_s,
                         spec=JoinSpec(algorithm="sj4", buffer_kb=buffer_kb, height_policy="b"))
        assert b.stats.disk_accesses <= a.stats.disk_accesses


def test_policies_only_affect_io_not_result_size(unbalanced_trees):
    tree_r, tree_s, _, _ = unbalanced_trees
    sizes = set()
    for policy in POLICIES:
        result = spatial_join(tree_r, tree_s,
                              spec=JoinSpec(algorithm="sj4", buffer_kb=8, height_policy=policy))
        sizes.add(len(result.pairs))
    assert len(sizes) == 1


def test_unknown_policy_rejected(unbalanced_trees):
    tree_r, tree_s, _, _ = unbalanced_trees
    with pytest.raises(ValueError):
        spatial_join(tree_r, tree_s, spec=JoinSpec(height_policy="z"))
