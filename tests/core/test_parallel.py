"""Tests for the partitioned parallel join executor.

The contract: a parallel run returns the exact same pair multiset as
the serial engine for every algorithm, any worker count, and trees of
equal or different height — and its merged statistics are precisely
the partitioning counters plus the sum of the per-worker counters.
"""

import pytest

from repro.core import (JoinContext, JoinSpec, ParallelJoinResult,
                        cluster_tasks, make_algorithm,
                        parallel_spatial_join, partition_tasks,
                        spatial_join)
from repro.core.parallel import _world_rect
from repro.geometry import SpatialPredicate

ALGORITHMS = ("sj1", "sj2", "sj3", "sj4", "sj5")
WORKER_COUNTS = (1, 2, 4)


# ----------------------------------------------------------------------
# Result parity with the serial engine
# ----------------------------------------------------------------------

@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_parity_with_serial_equal_heights(medium_trees, algorithm,
                                          workers):
    tree_r, tree_s = medium_trees
    serial = spatial_join(tree_r, tree_s,
                          spec=JoinSpec(algorithm=algorithm, buffer_kb=16))
    parallel = spatial_join(
        tree_r, tree_s,
        spec=JoinSpec(algorithm=algorithm, buffer_kb=16,
                      workers=workers))
    assert sorted(parallel.pairs) == sorted(serial.pairs)


@pytest.mark.parametrize("algorithm", ("sj1", "sj4"))
@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_parity_with_serial_different_heights(unbalanced_trees,
                                              algorithm, workers):
    tree_r, tree_s, _, _ = unbalanced_trees
    assert tree_r.height != tree_s.height
    serial = spatial_join(tree_r, tree_s,
                          spec=JoinSpec(algorithm=algorithm, buffer_kb=16))
    parallel = spatial_join(
        tree_r, tree_s,
        spec=JoinSpec(algorithm=algorithm, buffer_kb=16,
                      workers=workers))
    assert sorted(parallel.pairs) == sorted(serial.pairs)


@pytest.mark.parametrize("workers", (2, 4))
def test_parity_with_non_default_predicate(medium_trees, workers):
    tree_r, tree_s = medium_trees
    spec = JoinSpec(predicate=SpatialPredicate.CONTAINS, buffer_kb=16,
                    workers=workers)
    serial = spatial_join(tree_r, tree_s,
                          spec=JoinSpec(predicate=SpatialPredicate.CONTAINS, buffer_kb=16))
    parallel = spatial_join(tree_r, tree_s, spec=spec)
    assert sorted(parallel.pairs) == sorted(serial.pairs)


def test_no_duplicate_pairs(medium_trees):
    tree_r, tree_s = medium_trees
    result = spatial_join(tree_r, tree_s,
                          spec=JoinSpec(buffer_kb=16, workers=4))
    assert len(result.pairs) == len(set(result.pairs))


# ----------------------------------------------------------------------
# Merged statistics
# ----------------------------------------------------------------------

@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_merged_counters_are_the_sum_of_the_parts(medium_trees, workers):
    # Called directly so workers=1 also exercises the partition/merge
    # machinery (spatial_join routes workers=1 to the serial engine).
    tree_r, tree_s = medium_trees
    result = parallel_spatial_join(
        tree_r, tree_s, JoinSpec(buffer_kb=16, workers=workers))
    assert isinstance(result, ParallelJoinResult)
    parts = [result.partition_stats, *result.worker_stats]
    for counter in ("node_pairs", "pairs_output",
                    "presort_comparisons"):
        assert getattr(result.stats, counter) == sum(
            getattr(part, counter) for part in parts)
    assert result.stats.disk_accesses == sum(
        part.io.disk_reads for part in parts)
    assert result.stats.comparisons.join == sum(
        part.comparisons.join for part in parts)
    assert result.stats.comparisons.sort == sum(
        part.comparisons.sort for part in parts)
    assert result.stats.pairs_output == len(result.pairs)


def test_workers_field_and_batches(medium_trees):
    tree_r, tree_s = medium_trees
    result = spatial_join(tree_r, tree_s,
                          spec=JoinSpec(buffer_kb=16, workers=4))
    assert result.workers == 4
    assert 1 <= len(result.batch_sizes) <= 4
    assert len(result.worker_stats) == len(result.batch_sizes)
    assert sum(result.batch_sizes) >= len(result.batch_sizes)
    # Contiguous z-order cuts are balanced to within one task.
    assert max(result.batch_sizes) - min(result.batch_sizes) <= 1


def test_statistics_identify_the_algorithm(medium_trees):
    tree_r, tree_s = medium_trees
    result = spatial_join(tree_r, tree_s,
                          spec=JoinSpec(algorithm="sj5", buffer_kb=16,
                                        workers=2))
    assert result.stats.algorithm == "SJ5"
    for part in result.worker_stats:
        assert part.algorithm == "SJ5"


# ----------------------------------------------------------------------
# Partitioning and clustering internals
# ----------------------------------------------------------------------

def test_partition_reaches_the_requested_fanout(medium_trees):
    tree_r, tree_s = medium_trees
    ctx = JoinContext(tree_r, tree_s, buffer_kb=16)
    algo = make_algorithm("sj4")
    tasks = partition_tasks(ctx, algo, target=8)
    assert len(tasks) >= 8
    # Every task carries a root-anchored ancestor chain.
    for task in tasks:
        assert task.r_path[0] == tree_r.root_id
        assert task.s_path[0] == tree_s.root_id
        assert task.r_depth == len(task.r_path) - 1


def test_partition_fanout_level_one_stays_at_root_children(
        medium_trees):
    tree_r, tree_s = medium_trees
    ctx = JoinContext(tree_r, tree_s, buffer_kb=16)
    tasks = partition_tasks(ctx, make_algorithm("sj4"), target=1,
                            fanout_level=1)
    assert tasks
    assert all(task.r_depth == 1 and task.s_depth == 1
               for task in tasks)


def test_cluster_tasks_balances_and_preserves_tasks(medium_trees):
    tree_r, tree_s = medium_trees
    ctx = JoinContext(tree_r, tree_s, buffer_kb=16)
    tasks = partition_tasks(ctx, make_algorithm("sj4"), target=16)
    batches = cluster_tasks(tasks, 4, _world_rect(tree_r, tree_s))
    assert len(batches) == 4
    flattened = [task for batch in batches for task in batch]
    assert sorted(t.center for t in flattened) == sorted(
        t.center for t in tasks)
    sizes = [len(batch) for batch in batches]
    assert max(sizes) - min(sizes) <= 1


def test_cluster_tasks_handles_empty_and_tiny_inputs():
    assert cluster_tasks([], 4, None) == []


# ----------------------------------------------------------------------
# Direct executor entry point and edge cases
# ----------------------------------------------------------------------

def test_direct_call_defaults_to_one_worker(medium_trees):
    tree_r, tree_s = medium_trees
    result = parallel_spatial_join(tree_r, tree_s)
    serial = spatial_join(tree_r, tree_s, spec=JoinSpec(buffer_kb=128))
    assert sorted(result.pairs) == sorted(serial.pairs)
    assert result.workers == 1


def test_empty_tree_yields_empty_result(medium_trees):
    from repro.rtree import RStarTree, RTreeParams
    tree_r, _ = medium_trees
    empty = RStarTree(RTreeParams.from_page_size(
        tree_r.params.page_size))
    result = parallel_spatial_join(
        tree_r, empty, JoinSpec(buffer_kb=16, workers=2))
    assert result.pairs == []
    assert result.stats.pairs_output == 0
    assert result.batch_sizes == []


def test_presort_charged_once_in_the_coordinator(medium_records_pair):
    # Fresh trees: the session-scoped fixtures may already be sorted by
    # earlier joins, which would make the presort a no-op.
    from tests.conftest import build_rstar
    left, right = medium_records_pair
    tree_r = build_rstar(left[:800])
    tree_s = build_rstar(right[:800])
    result = parallel_spatial_join(
        tree_r, tree_s,
        JoinSpec(buffer_kb=16, presort=True, workers=2))
    assert result.partition_stats.presort_comparisons > 0
    assert all(part.presort_comparisons == 0
               for part in result.worker_stats)
    serial_trees = (build_rstar(left[:800]), build_rstar(right[:800]))
    serial = spatial_join(*serial_trees,
                          spec=JoinSpec(buffer_kb=16, presort=True))
    assert sorted(result.pairs) == sorted(serial.pairs)


def test_streaming_refuses_parallel_spec(medium_trees):
    from repro.core import spatial_join_stream
    tree_r, tree_s = medium_trees
    with pytest.raises(ValueError):
        spatial_join_stream(tree_r, tree_s, lambda a, b: None,
                            spec=JoinSpec(workers=2))
