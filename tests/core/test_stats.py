"""Unit tests for join statistics and results."""

from repro.core import JoinResult, JoinStatistics


def test_defaults():
    stats = JoinStatistics()
    assert stats.disk_accesses == 0
    assert stats.total_comparisons == 0
    assert stats.join_comparisons == 0
    assert stats.sort_comparisons == 0


def test_properties_delegate_to_counters():
    stats = JoinStatistics()
    stats.comparisons.join = 10
    stats.comparisons.sort = 5
    stats.presort_comparisons = 100
    stats.io.disk_reads = 7
    assert stats.join_comparisons == 10
    assert stats.sort_comparisons == 5
    assert stats.total_comparisons == 115
    assert stats.disk_accesses == 7


def test_join_result_container():
    stats = JoinStatistics(algorithm="SJ4")
    result = JoinResult([(1, 2), (3, 4), (1, 2)], stats)
    assert len(result) == 3
    assert result.pair_set() == {(1, 2), (3, 4)}
