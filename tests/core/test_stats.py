"""Unit tests for join statistics and results."""

from repro.core import JoinResult, JoinStatistics


def test_defaults():
    stats = JoinStatistics()
    assert stats.disk_accesses == 0
    assert stats.total_comparisons == 0
    assert stats.join_comparisons == 0
    assert stats.sort_comparisons == 0


def test_properties_delegate_to_counters():
    stats = JoinStatistics()
    stats.comparisons.join = 10
    stats.comparisons.sort = 5
    stats.presort_comparisons = 100
    stats.io.disk_reads = 7
    assert stats.join_comparisons == 10
    assert stats.sort_comparisons == 5
    assert stats.total_comparisons == 115
    assert stats.disk_accesses == 7


def test_join_result_container():
    stats = JoinStatistics(algorithm="SJ4")
    result = JoinResult([(1, 2), (3, 4), (1, 2)], stats)
    assert len(result) == 3
    assert result.pair_set() == {(1, 2), (3, 4)}


def _stats(join=0, sort=0, reads=0, lru=0, path=0, presort=0,
           node_pairs=0, pairs=0):
    stats = JoinStatistics()
    stats.comparisons.join = join
    stats.comparisons.sort = sort
    stats.io.disk_reads = reads
    stats.io.lru_hits = lru
    stats.io.path_hits = path
    stats.presort_comparisons = presort
    stats.node_pairs = node_pairs
    stats.pairs_output = pairs
    return stats


def test_merge_sums_every_counter():
    a = _stats(join=10, sort=2, reads=5, lru=1, path=3, presort=7,
               node_pairs=4, pairs=9)
    b = _stats(join=1, sort=1, reads=1, lru=1, path=1, presort=1,
               node_pairs=1, pairs=1)
    c = _stats(join=100, reads=50, pairs=20)
    a.algorithm = "SJ4"
    a.page_size = 2048
    a.buffer_kb = 128.0
    merged = a.merge(b, c)
    assert merged.algorithm == "SJ4"
    assert merged.page_size == 2048
    assert merged.buffer_kb == 128.0
    assert merged.comparisons.join == 111
    assert merged.comparisons.sort == 3
    assert merged.io.disk_reads == 56
    assert merged.io.lru_hits == 2
    assert merged.io.path_hits == 4
    assert merged.presort_comparisons == 8
    assert merged.node_pairs == 5
    assert merged.pairs_output == 30


def test_merge_leaves_operands_untouched():
    a = _stats(join=10, reads=5)
    b = _stats(join=1, reads=1)
    merged = a.merge(b)
    merged.comparisons.join += 1000
    merged.io.disk_reads += 1000
    assert a.comparisons.join == 10 and a.io.disk_reads == 5
    assert b.comparisons.join == 1 and b.io.disk_reads == 1


def test_merge_of_nothing_is_a_copy():
    a = _stats(join=3, reads=2, pairs=1)
    merged = a.merge()
    assert merged.comparisons.join == 3
    assert merged.io.disk_reads == 2
    assert merged.pairs_output == 1
    assert merged is not a


def test_to_dict_from_dict_round_trip():
    stats = _stats(join=10, sort=2, reads=5, lru=1, path=3, presort=7,
                   node_pairs=4, pairs=9)
    stats.algorithm = "SJ3"
    stats.page_size = 4096
    stats.buffer_kb = 32.0
    stats.faults_injected = 2
    stats.batch_retries = 1
    stats.degraded_batches = 1
    clone = JoinStatistics.from_dict(stats.to_dict())
    assert clone.to_dict() == stats.to_dict()
    assert clone.algorithm == "SJ3"
    assert clone.comparisons.join == 10
    assert clone.io.disk_reads == 5
    assert clone.degraded_batches == 1


def test_to_dict_is_json_safe():
    import json
    payload = json.dumps(_stats(join=1, reads=2).to_dict())
    clone = JoinStatistics.from_dict(json.loads(payload))
    assert clone.comparisons.join == 1
    assert clone.io.disk_reads == 2


def test_merge_of_deserialized_parts_equals_merge_of_originals():
    parts = [
        _stats(join=10, sort=2, reads=5, lru=1, presort=7,
               node_pairs=4, pairs=9),
        _stats(join=3, sort=1, reads=2, path=8, pairs=4),
        _stats(join=100, reads=50, node_pairs=17),
    ]
    parts[0].algorithm = "SJ4"
    shipped = [JoinStatistics.from_dict(part.to_dict())
               for part in parts]
    merged = parts[0].merge(*parts[1:])
    remerged = shipped[0].merge(*shipped[1:])
    assert remerged.to_dict() == merged.to_dict()
