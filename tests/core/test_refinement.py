"""Unit tests for the ID- and object-spatial-joins (refinement step)."""

import pytest

from repro.core import id_spatial_join, object_spatial_join
from repro.core.refinement import RefinementStats
from repro.geometry import Polygon, Polyline


@pytest.fixture
def line_objects():
    # r1 crosses s1; r2's MBR overlaps s2's but the lines do not touch.
    objects_r = {
        1: Polyline([(0, 0), (4, 4)]),
        2: Polyline([(10, 10), (10, 14), (11, 14)]),
    }
    objects_s = {
        1: Polyline([(0, 4), (4, 0)]),
        2: Polyline([(10.5, 10), (10.5, 13), (11, 13)]),
    }
    return objects_r, objects_s


def test_id_join_filters_false_hits(line_objects):
    objects_r, objects_s = line_objects
    candidates = [(1, 1), (2, 2)]
    survivors, stats = id_spatial_join(candidates, objects_r, objects_s)
    assert survivors == [(1, 1)]
    assert stats.candidates == 2
    assert stats.survivors == 1
    assert stats.false_hit_ratio == 0.5


def test_id_join_empty_candidates(line_objects):
    objects_r, objects_s = line_objects
    survivors, stats = id_spatial_join([], objects_r, objects_s)
    assert survivors == []
    assert stats.false_hit_ratio == 0.0


def test_object_join_line_line_returns_crossing(line_objects):
    objects_r, objects_s = line_objects
    results, stats = object_spatial_join([(1, 1)], objects_r, objects_s)
    assert len(results) == 1
    intersection = results[0]
    assert intersection.id_r == 1 and intersection.id_s == 1
    assert intersection.points == [(2.0, 2.0)]
    assert intersection.region is None


def test_object_join_polygons_returns_region():
    square_a = Polygon([(0, 0), (4, 0), (4, 4), (0, 4)])
    square_b = Polygon([(2, 2), (6, 2), (6, 6), (2, 6)])
    results, _ = object_spatial_join([(1, 1)], {1: square_a},
                                     {1: square_b})
    assert len(results) == 1
    region = results[0].region
    assert region is not None
    assert region.area() == pytest.approx(4.0)
    # Boundary crossings are reported too.
    assert len(results[0].points) == 2


def test_object_join_contained_polygon():
    outer = Polygon([(0, 0), (10, 0), (10, 10), (0, 10)])
    inner = Polygon([(4, 4), (5, 4), (5, 5), (4, 5)])
    results, _ = object_spatial_join([(1, 1)], {1: outer}, {1: inner})
    assert len(results) == 1
    region = results[0].region
    assert region is not None
    assert region.area() == pytest.approx(1.0)
    assert results[0].points == []


def test_line_meets_region():
    region = Polygon([(0, 0), (4, 0), (4, 4), (0, 4)])
    crossing = Polyline([(-1, 2), (5, 2)])
    inside = Polyline([(1, 1), (2, 2)])
    outside = Polyline([(10, 10), (12, 12)])
    survivors, _ = id_spatial_join(
        [(1, 1), (2, 1), (3, 1)],
        {1: crossing, 2: inside, 3: outside},
        {1: region})
    assert survivors == [(1, 1), (2, 1)]


def test_object_join_line_region_returns_clipped_pieces():
    region = Polygon([(0, 0), (4, 0), (4, 4), (0, 4)])
    crossing = Polyline([(-2, 2), (6, 2)])
    results, _ = object_spatial_join([(1, 1)], {1: crossing},
                                     {1: region})
    assert len(results) == 1
    pieces = results[0].line_pieces
    assert len(pieces) == 1
    assert pieces[0].length() == pytest.approx(4.0)
    # Boundary crossings reported as well (entry and exit).
    assert len(results[0].points) == 2


def test_object_join_line_inside_region_kept_whole():
    region = Polygon([(0, 0), (10, 0), (10, 10), (0, 10)])
    inside = Polyline([(2, 2), (4, 4), (6, 2)])
    results, _ = object_spatial_join([(1, 1)], {1: inside}, {1: region})
    pieces = results[0].line_pieces
    assert len(pieces) == 1
    assert pieces[0].length() == pytest.approx(inside.length())
    assert results[0].points == []


def test_mixed_candidate_rejected_pairs_counted():
    a = Polyline([(0, 0), (1, 1)])
    b = Polyline([(5, 5), (6, 6)])
    survivors, stats = id_spatial_join([(1, 1)], {1: a}, {1: b})
    assert survivors == []
    assert stats.candidates == 1 and stats.survivors == 0
    assert stats.false_hit_ratio == 1.0


def test_refinement_stats_defaults():
    stats = RefinementStats()
    assert stats.false_hit_ratio == 0.0
