"""Tests for the materialized spatial join index (Rotem-style)."""

import random

import pytest

from repro.core.joinindex import SpatialJoinIndex
from repro.core import nested_loop_join
from repro.geometry import Rect
from tests.conftest import build_rstar, make_rects


@pytest.fixture
def setup():
    left = make_rects(500, seed=901, max_extent=25.0)
    right = make_rects(500, seed=902, max_extent=25.0)
    tree_r = build_rstar(left, 256)
    tree_s = build_rstar(right, 256)
    index = SpatialJoinIndex(tree_r, tree_s, buffer_kb=32)
    return left, right, index


class TestConstruction:
    def test_initial_pairs_match_join(self, setup):
        left, right, index = setup
        oracle = nested_loop_join(left, right).pair_set()
        assert set(index.pairs()) == oracle
        assert len(index) == len(oracle)
        assert index.build_stats.disk_accesses > 0

    def test_lookups(self, setup):
        left, right, index = setup
        oracle = nested_loop_join(left, right).pair_set()
        some_a = next(iter(oracle))[0]
        expected = {b for a, b in oracle if a == some_a}
        assert index.partners_of_left(some_a) == expected
        some_b = next(iter(oracle))[1]
        expected = {a for a, b in oracle if b == some_b}
        assert index.partners_of_right(some_b) == expected
        assert next(iter(oracle)) in index
        assert (10**9, 10**9) not in index


class TestMaintenance:
    def test_insert_left_links_new_pairs(self, setup):
        _, right, index = setup
        rect = Rect(400, 400, 480, 480)
        partners = index.insert_left(rect, 9001)
        expected = {j for r, j in right if r.intersects(rect)}
        assert partners == expected
        assert index.partners_of_left(9001) == expected
        assert index.verify()

    def test_insert_right_links_new_pairs(self, setup):
        left, _, index = setup
        rect = Rect(100, 100, 180, 180)
        partners = index.insert_right(rect, 9002)
        expected = {i for r, i in left if r.intersects(rect)}
        assert partners == expected
        assert index.verify()

    def test_delete_left_unlinks(self, setup):
        left, _, index = setup
        rect, ref = left[7]
        before = index.partners_of_left(ref)
        assert index.delete_left(rect, ref)
        assert index.partners_of_left(ref) == set()
        for b in before:
            assert ref not in index.partners_of_right(b)
        assert index.verify()

    def test_delete_missing_returns_false(self, setup):
        _, _, index = setup
        assert not index.delete_left(Rect(0, 0, 1, 1), 12345)

    def test_maintenance_accounting(self, setup):
        _, _, index = setup
        assert index.maintenance_accesses == 0
        index.insert_left(Rect(10, 10, 20, 20), 9003)
        assert index.maintenance_accesses > 0

    def test_random_workload_stays_consistent(self, setup):
        left, right, index = setup
        rng = random.Random(11)
        live_left = dict((ref, rect) for rect, ref in left)
        next_id = 10_000
        for _ in range(120):
            action = rng.random()
            if action < 0.35 and live_left:
                ref = rng.choice(sorted(live_left))
                rect = live_left.pop(ref)
                assert index.delete_left(rect, ref)
            elif action < 0.7:
                x, y = rng.random() * 900, rng.random() * 900
                rect = Rect(x, y, x + rng.random() * 40,
                            y + rng.random() * 40)
                index.insert_left(rect, next_id)
                live_left[next_id] = rect
                next_id += 1
            else:
                x, y = rng.random() * 900, rng.random() * 900
                rect = Rect(x, y, x + rng.random() * 40,
                            y + rng.random() * 40)
                index.insert_right(rect, next_id)
                next_id += 1
        assert index.verify()

    def test_maintenance_cheaper_than_rebuild(self, setup):
        """The point of a join index: one insert costs a window query,
        not a whole join."""
        _, _, index = setup
        before = index.maintenance_accesses
        index.insert_left(Rect(5, 5, 6, 6), 9004)
        per_insert = index.maintenance_accesses - before
        assert per_insert < index.build_stats.disk_accesses / 5
