"""Property-based tests: every algorithm equals the brute-force oracle
on random rectangle sets (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import nested_loop_join, spatial_join
from repro.geometry import Rect
from repro.rtree import RStarTree, RTreeParams
from repro.core import JoinSpec

coords = st.floats(min_value=0.0, max_value=50.0,
                   allow_nan=False, allow_infinity=False)


@st.composite
def rect_strategy(draw):
    x = draw(coords)
    y = draw(coords)
    w = draw(st.floats(min_value=0.0, max_value=15.0))
    h = draw(st.floats(min_value=0.0, max_value=15.0))
    return Rect(x, y, x + w, y + h)


rect_lists = st.lists(rect_strategy(), min_size=0, max_size=60)


def build(rect_list):
    tree = RStarTree(RTreeParams.from_page_size(80))   # M=4
    for i, rect in enumerate(rect_list):
        tree.insert(rect, i)
    return tree


@settings(max_examples=25, deadline=None)
@given(rect_lists, rect_lists,
       st.sampled_from(["sj1", "sj2", "sj3", "sj4", "sj5"]),
       st.sampled_from([0.0, 1.0, 64.0]))
def test_join_matches_oracle(left, right, algorithm, buffer_kb):
    tree_r = build(left)
    tree_s = build(right)
    oracle = nested_loop_join(
        [(r, i) for i, r in enumerate(left)],
        [(r, i) for i, r in enumerate(right)]).pair_set()
    result = spatial_join(tree_r, tree_s,
                          spec=JoinSpec(algorithm=algorithm, buffer_kb=buffer_kb))
    assert result.pair_set() == oracle


@settings(max_examples=15, deadline=None)
@given(rect_lists, rect_lists)
def test_algorithms_agree_with_each_other(left, right):
    tree_r = build(left)
    tree_s = build(right)
    results = {
        algorithm: spatial_join(tree_r, tree_s,
                                spec=JoinSpec(algorithm=algorithm, buffer_kb=8)).pair_set()
        for algorithm in ("sj1", "sj3", "sj5")
    }
    assert results["sj1"] == results["sj3"] == results["sj5"]


@settings(max_examples=15, deadline=None)
@given(rect_lists)
def test_self_join_contains_diagonal(rect_list):
    tree_r = build(rect_list)
    tree_s = build(rect_list)
    result = spatial_join(tree_r, tree_s,
                          spec=JoinSpec(algorithm="sj4", buffer_kb=8))
    pair_set = result.pair_set()
    for i in range(len(rect_list)):
        assert (i, i) in pair_set
