"""Golden counter values on a frozen workload.

Every number the benchmarks report flows from the comparison and
disk-access accounting.  These tests lock the exact counter values of
all five algorithms on a fixed dataset, so any unintended change to the
accounting semantics (a re-ordered short-circuit, a missed charge, a
buffering tweak) fails loudly instead of silently shifting every
reproduced table.

If a change to the accounting is *intentional*, regenerate the golden
values with the snippet in this file's docstring history and document
the semantic change in docs/algorithms.md.
"""

import pytest

from repro.core import spatial_join
from tests.conftest import build_rstar, make_rects
from repro.core import JoinSpec

# (algorithm, pairs, disk_accesses, cmp_join, cmp_sort, presort,
#  node_pairs) for make_rects(400, seed=424242/434343, max_extent=30),
# page size 256, buffer 8 KByte, fresh trees per run.
GOLDEN = [
    ("sj1", 135, 118, 21788, 0, 0, 149),
    ("sj2", 135, 118, 12337, 0, 0, 149),
    ("sj3", 135, 122, 10770, 0, 1694, 149),
    ("sj4", 135, 122, 10770, 0, 1694, 149),
    ("sj5", 135, 114, 10770, 384, 1694, 149),
]


@pytest.fixture(scope="module")
def workload():
    return (make_rects(400, seed=424242, max_extent=30.0),
            make_rects(400, seed=434343, max_extent=30.0))


@pytest.mark.parametrize(
    "algorithm,pairs,accesses,cmp_join,cmp_sort,presort,node_pairs",
    GOLDEN)
def test_golden_counters(workload, algorithm, pairs, accesses,
                         cmp_join, cmp_sort, presort, node_pairs):
    left, right = workload
    # Fresh trees per algorithm: the lazy 'maintained' sorting mutates
    # node order, so sharing trees would couple the runs.
    tree_r = build_rstar(left, 256)
    tree_s = build_rstar(right, 256)
    result = spatial_join(tree_r, tree_s,
                          spec=JoinSpec(algorithm=algorithm, buffer_kb=8))
    stats = result.stats
    assert len(result) == pairs
    assert stats.disk_accesses == accesses
    assert stats.comparisons.join == cmp_join
    assert stats.comparisons.sort == cmp_sort
    assert stats.presort_comparisons == presort
    assert stats.node_pairs == node_pairs


def test_golden_relationships():
    """Cross-checks that must hold between the golden rows."""
    by_algo = {row[0]: row for row in GOLDEN}
    # Identical results everywhere.
    assert len({row[1] for row in GOLDEN}) == 1
    assert len({row[6] for row in GOLDEN}) == 1
    # SJ2 restriction cuts comparisons; the sweep cuts further.
    assert by_algo["sj2"][3] < by_algo["sj1"][3]
    assert by_algo["sj3"][3] < by_algo["sj2"][3]
    # SJ3 and SJ4 share CPU exactly (pinning is I/O-only).
    assert by_algo["sj3"][3] == by_algo["sj4"][3]
    # SJ5 pays the z-sort on top of SJ3's join comparisons.
    assert by_algo["sj5"][3] == by_algo["sj3"][3]
    assert by_algo["sj5"][4] > 0
