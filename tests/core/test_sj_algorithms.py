"""Integration tests: all five algorithms produce the oracle result and
their counters relate the way the paper claims."""

import pytest

from repro.core import nested_loop_join, spatial_join
from repro.rtree import tree_properties
from repro.core import JoinSpec

ALGORITHMS = ("sj1", "sj2", "sj3", "sj4", "sj5")


@pytest.fixture(scope="module")
def oracle(medium_records_pair):
    left, right = medium_records_pair
    return nested_loop_join(left, right).pair_set()


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_algorithm_matches_oracle(medium_trees, oracle, algorithm):
    tree_r, tree_s = medium_trees
    result = spatial_join(tree_r, tree_s,
                          spec=JoinSpec(algorithm=algorithm, buffer_kb=32))
    assert result.pair_set() == oracle


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("buffer_kb", [0, 8, 512])
def test_result_independent_of_buffer(medium_trees, oracle, algorithm,
                                      buffer_kb):
    tree_r, tree_s = medium_trees
    result = spatial_join(tree_r, tree_s,
                          spec=JoinSpec(algorithm=algorithm, buffer_kb=buffer_kb))
    assert result.pair_set() == oracle


def test_no_duplicate_output_pairs(medium_trees):
    tree_r, tree_s = medium_trees
    for algorithm in ALGORITHMS:
        result = spatial_join(tree_r, tree_s,
                              spec=JoinSpec(algorithm=algorithm, buffer_kb=32))
        assert len(result.pairs) == len(result.pair_set())


def test_sj2_reduces_comparisons(medium_trees):
    tree_r, tree_s = medium_trees
    sj1 = spatial_join(tree_r, tree_s,
                       spec=JoinSpec(algorithm="sj1", buffer_kb=0))
    sj2 = spatial_join(tree_r, tree_s,
                       spec=JoinSpec(algorithm="sj2", buffer_kb=0))
    assert sj2.stats.comparisons.total < sj1.stats.comparisons.total


def test_sweep_reduces_comparisons_further(medium_trees):
    tree_r, tree_s = medium_trees
    sj2 = spatial_join(tree_r, tree_s,
                       spec=JoinSpec(algorithm="sj2", buffer_kb=0))
    sj3 = spatial_join(tree_r, tree_s,
                       spec=JoinSpec(algorithm="sj3", buffer_kb=0))
    assert sj3.stats.comparisons.join < sj2.stats.comparisons.join


def test_sj4_io_not_worse_than_sj3_in_aggregate(medium_trees):
    """Pinning helps "particularly if the buffer is small" (Section
    4.3); pointwise dominance is not guaranteed on sparse schedules, so
    the claim is checked in aggregate over the buffer sweep."""
    tree_r, tree_s = medium_trees
    total_sj3 = 0
    total_sj4 = 0
    for buffer_kb in (0, 8, 32):
        total_sj3 += spatial_join(tree_r, tree_s,
                                  spec=JoinSpec(algorithm="sj3", buffer_kb=buffer_kb)).stats.disk_accesses
        total_sj4 += spatial_join(tree_r, tree_s,
                                  spec=JoinSpec(algorithm="sj4", buffer_kb=buffer_kb)).stats.disk_accesses
    assert total_sj4 <= total_sj3 * 1.02


def test_sj5_charges_zorder_sort(medium_trees):
    tree_r, tree_s = medium_trees
    sj5 = spatial_join(tree_r, tree_s,
                       spec=JoinSpec(algorithm="sj5", buffer_kb=32))
    assert sj5.stats.comparisons.sort > 0


def test_large_buffer_reaches_near_optimum(medium_trees):
    tree_r, tree_s = medium_trees
    props = (tree_properties(tree_r), tree_properties(tree_s))
    optimum = props[0].total_pages + props[1].total_pages
    result = spatial_join(tree_r, tree_s,
                          spec=JoinSpec(algorithm="sj4", buffer_kb=4096))
    assert result.stats.disk_accesses <= optimum


def test_io_monotone_in_buffer_size(medium_trees):
    tree_r, tree_s = medium_trees
    accesses = [
        spatial_join(tree_r, tree_s,
                     spec=JoinSpec(algorithm="sj4", buffer_kb=b)).stats.disk_accesses
        for b in (0, 32, 512)
    ]
    assert accesses[0] >= accesses[1] >= accesses[2]


def test_stats_fields_populated(medium_trees):
    tree_r, tree_s = medium_trees
    result = spatial_join(tree_r, tree_s,
                          spec=JoinSpec(algorithm="sj4", buffer_kb=32))
    stats = result.stats
    assert stats.algorithm == "SJ4"
    assert stats.page_size == 1024
    assert stats.buffer_kb == 32
    assert stats.pairs_output == len(result.pairs)
    assert stats.node_pairs > 0
    assert stats.disk_accesses > 0


def test_unknown_algorithm_rejected(medium_trees):
    tree_r, tree_s = medium_trees
    with pytest.raises(ValueError):
        spatial_join(tree_r, tree_s, spec=JoinSpec(algorithm="sj9"))


def test_mismatched_page_sizes_rejected(medium_records_pair):
    from tests.conftest import build_rstar
    left, right = medium_records_pair
    tree_r = build_rstar(left[:200], page_size=1024)
    tree_s = build_rstar(right[:200], page_size=2048)
    with pytest.raises(ValueError):
        spatial_join(tree_r, tree_s)


def test_empty_tree_join(medium_trees):
    from repro.rtree import RStarTree, RTreeParams
    tree_r, _ = medium_trees
    empty = RStarTree(RTreeParams.from_page_size(1024))
    result = spatial_join(tree_r, empty,
                          spec=JoinSpec(algorithm="sj4", buffer_kb=8))
    assert result.pairs == []
    result = spatial_join(empty, tree_r,
                          spec=JoinSpec(algorithm="sj1", buffer_kb=8))
    assert result.pairs == []


def test_disjoint_trees_join(medium_records_pair):
    from tests.conftest import build_rstar
    from repro.geometry import Rect
    left = [(Rect(r.xl, r.yl, r.xu, r.yu), i)
            for (r, i) in medium_records_pair[0][:300]]
    shifted = [(Rect(r.xl + 10_000_000, r.yl, r.xu + 10_000_000, r.yu), i)
               for (r, i) in medium_records_pair[1][:300]]
    tree_r = build_rstar(left)
    tree_s = build_rstar(shifted)
    for algorithm in ALGORITHMS:
        result = spatial_join(tree_r, tree_s,
                              spec=JoinSpec(algorithm=algorithm))
        assert result.pairs == []
