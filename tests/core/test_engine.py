"""Tests for engine internals: pinning, pair ordering, restriction."""

import pytest

from repro.core import (JoinContext, make_algorithm, spatial_join)
from repro.core.planner import SweepJoinNoRestrict
from tests.conftest import build_rstar, make_rects
from repro.core import JoinSpec


def test_make_algorithm_names():
    for name, expected in (("sj1", "SJ1"), ("SJ4", "SJ4"),
                           ("sj3-norestrict", "SJ3/norestrict")):
        assert make_algorithm(name).name == expected


def test_make_algorithm_unknown():
    with pytest.raises(ValueError, match="unknown join algorithm"):
        make_algorithm("quantum")


def test_norestrict_variant_matches_result(medium_trees):
    tree_r, tree_s = medium_trees
    restricted = spatial_join(tree_r, tree_s,
                              spec=JoinSpec(algorithm="sj3", buffer_kb=32))
    unrestricted = spatial_join(tree_r, tree_s,
                                spec=JoinSpec(algorithm="sj3-norestrict", buffer_kb=32))
    assert restricted.pair_set() == unrestricted.pair_set()


def test_restriction_helps_sweep_on_map_data():
    """On map-shaped data the restricted sweep needs fewer comparisons
    than the unrestricted one (Table 4, version II vs version I)."""
    from repro.bench.runner import build_tree
    from repro.data import load_test
    pair = load_test("A", scale=0.02)
    tree_r = build_tree(pair.r.records, 1024)
    tree_s = build_tree(pair.s.records, 1024)
    restricted = spatial_join(tree_r, tree_s,
                              spec=JoinSpec(algorithm="sj3", buffer_kb=32))
    unrestricted = spatial_join(tree_r, tree_s,
                                spec=JoinSpec(algorithm="sj3-norestrict", buffer_kb=32))
    assert restricted.pair_set() == unrestricted.pair_set()
    assert restricted.stats.comparisons.join < \
        unrestricted.stats.comparisons.join


def test_pin_events_recorded(medium_trees):
    tree_r, tree_s = medium_trees
    result = spatial_join(tree_r, tree_s,
                          spec=JoinSpec(algorithm="sj4", buffer_kb=32))
    # SJ4 pins whenever a page has remaining partners.
    assert result.stats.io.pin_events > 0


def test_sj3_does_not_pin(medium_trees):
    tree_r, tree_s = medium_trees
    result = spatial_join(tree_r, tree_s,
                          spec=JoinSpec(algorithm="sj3", buffer_kb=32))
    assert result.stats.io.pin_events == 0


def test_pinning_processes_each_pair_once():
    """The pinned-group drain must not re-process pairs (output size
    is the unique pair count, checked against SJ3)."""
    left = make_rects(1500, seed=101, max_extent=30.0)
    right = make_rects(1500, seed=102, max_extent=30.0)
    tree_r = build_rstar(left, page_size=256)
    tree_s = build_rstar(right, page_size=256)
    sj3 = spatial_join(tree_r, tree_s,
                       spec=JoinSpec(algorithm="sj3", buffer_kb=8))
    sj4 = spatial_join(tree_r, tree_s,
                       spec=JoinSpec(algorithm="sj4", buffer_kb=8))
    assert len(sj4.pairs) == len(sj3.pairs)
    assert sj4.pair_set() == sj3.pair_set()
    assert sj4.stats.node_pairs == sj3.stats.node_pairs


def test_root_rects_disjoint_short_circuit():
    from repro.geometry import Rect
    left = [(Rect(i, 0, i + 1, 1), i) for i in range(100)]
    right = [(Rect(i + 10_000, 0, i + 10_001, 1), i) for i in range(100)]
    tree_r = build_rstar(left)
    tree_s = build_rstar(right)
    result = spatial_join(tree_r, tree_s,
                          spec=JoinSpec(algorithm="sj2", buffer_kb=8))
    assert result.pairs == []
    # Only the two roots are read; the restriction kills the traversal.
    assert result.stats.disk_accesses == 2


def test_path_buffer_toggle_changes_io(medium_trees):
    tree_r, tree_s = medium_trees
    with_pb = spatial_join(tree_r, tree_s,
                           spec=JoinSpec(algorithm="sj1", buffer_kb=0, use_path_buffer=True))
    without_pb = spatial_join(tree_r, tree_s,
                              spec=JoinSpec(algorithm="sj1", buffer_kb=0, use_path_buffer=False))
    assert without_pb.stats.disk_accesses > with_pb.stats.disk_accesses
    assert with_pb.pair_set() == without_pb.pair_set()


def test_sort_mode_on_read_charges_sort(medium_trees):
    tree_r, tree_s = medium_trees
    # Fresh unsorted trees are needed: medium_trees may be sorted by
    # earlier runs, so rebuild small ones here.
    left = make_rects(1200, seed=103)
    right = make_rects(1200, seed=104)
    fresh_r = build_rstar(left, page_size=256)
    fresh_s = build_rstar(right, page_size=256)
    result = spatial_join(fresh_r, fresh_s,
                          spec=JoinSpec(algorithm="sj4", buffer_kb=8, sort_mode="on_read"))
    assert result.stats.comparisons.sort > 0
    assert result.stats.presort_comparisons == 0
    oracle = spatial_join(fresh_r, fresh_s,
                          spec=JoinSpec(algorithm="sj1", buffer_kb=8))
    assert result.pair_set() == oracle.pair_set()


def test_presort_flag(medium_trees):
    left = make_rects(600, seed=105)
    right = make_rects(600, seed=106)
    fresh_r = build_rstar(left, page_size=256)
    fresh_s = build_rstar(right, page_size=256)
    result = spatial_join(fresh_r, fresh_s,
                          spec=JoinSpec(algorithm="sj3", buffer_kb=8, presort=True))
    assert result.stats.presort_comparisons > 0
    assert result.stats.comparisons.sort == 0
