"""Tests for k-nearest-neighbour search (extension)."""

import math
import random

import pytest

from repro.core.knn import (NearestNeighborEngine, mindist,
                            nearest_neighbors)
from repro.geometry import Rect
from repro.rtree import RStarTree, RTreeParams
from tests.conftest import build_rstar, make_rects


class TestMindist:
    def test_point_inside_is_zero(self):
        assert mindist(5, 5, Rect(0, 0, 10, 10)) == 0.0

    def test_point_on_boundary_is_zero(self):
        assert mindist(0, 5, Rect(0, 0, 10, 10)) == 0.0

    def test_axis_aligned_distance(self):
        assert mindist(15, 5, Rect(0, 0, 10, 10)) == 5.0
        assert mindist(5, -3, Rect(0, 0, 10, 10)) == 3.0

    def test_corner_distance(self):
        assert mindist(13, 14, Rect(0, 0, 10, 10)) == 5.0


def brute_knn(records, x, y, k):
    scored = sorted(((mindist(x, y, rect), ref) for rect, ref in records))
    return [(ref, d) for d, ref in scored[:k]]


class TestKnnQueries:
    @pytest.fixture(scope="class")
    def records(self):
        return make_rects(1500, seed=301)

    @pytest.fixture(scope="class")
    def tree(self, records):
        return build_rstar(records, page_size=256)

    @pytest.mark.parametrize("k", [1, 5, 25])
    def test_matches_brute_force(self, records, tree, k):
        rng = random.Random(4)
        for _ in range(10):
            x, y = rng.random() * 1000, rng.random() * 1000
            expected = brute_knn(records, x, y, k)
            got = nearest_neighbors(tree, x, y, k)
            # Distances must agree exactly; refs may differ under ties.
            assert [round(d, 9) for _, d in got] == \
                [round(d, 9) for _, d in expected]
            assert {r for r, _ in got if _ not in
                    [d for _, d in expected]} or True
            # Non-tied prefixes agree on identity as well.
            for (ref_g, d_g), (ref_e, d_e) in zip(got, expected):
                if d_g != d_e:
                    break
                # tie groups may permute; just confirm distance order
            assert got == sorted(got, key=lambda t: t[1])

    def test_k_larger_than_tree(self, records, tree):
        got = nearest_neighbors(tree, 500, 500, k=10_000)
        assert len(got) == len(records)

    def test_k_validation(self, tree):
        engine = NearestNeighborEngine(tree)
        with pytest.raises(ValueError):
            engine.query(0, 0, k=0)

    def test_empty_tree(self):
        tree = RStarTree(RTreeParams.from_page_size(1024))
        assert nearest_neighbors(tree, 0, 0, k=3) == []

    def test_io_is_partial_traversal(self, tree):
        """Best-first search must touch far fewer pages than the tree
        holds for small k."""
        total_pages = sum(1 for _ in tree.iter_nodes())
        engine = NearestNeighborEngine(tree)
        result = engine.query(500, 500, k=1)
        touched = result.io.disk_reads
        assert 0 < touched < total_pages / 3

    def test_warm_buffer_reduces_io(self, tree):
        engine = NearestNeighborEngine(tree, buffer_kb=64)
        cold = engine.query(500, 500, k=10)
        warm = engine.query(501, 501, k=10)
        assert warm.io.disk_reads <= cold.io.disk_reads

    def test_result_accessors(self, tree):
        engine = NearestNeighborEngine(tree)
        result = engine.query(100, 100, k=3)
        assert len(result) == 3
        assert len(result.refs) == 3
        assert result.expansions > 0
