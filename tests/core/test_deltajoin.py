"""Overlay-join parity: base join + delta overlay == rebuilt join."""

import random

import pytest

from repro.core import JoinSpec
from repro.core.deltajoin import filter_hidden_pairs, overlay_join
from repro.db import SpatialDatabase
from repro.geometry import Rect
from repro.geometry.predicates import SpatialPredicate


def rect(rng, span=200.0, extent=12.0):
    x, y = rng.uniform(0, span), rng.uniform(0, span)
    return Rect(x, y, x + rng.uniform(1, extent),
                y + rng.uniform(1, extent))


def build_db(n=80, seed=21, ingest="delta"):
    db = SpatialDatabase(page_size=1024)
    rng = random.Random(seed)
    for name in ("left", "right"):
        relation = db.create_relation(name)
        for _ in range(n):
            relation.insert(rect(rng))
    db.set_ingest_mode(ingest)
    return db


def mutate(db, seed=4, inserts=20, deletes=8):
    """A deterministic burst of writes on both relations."""
    rng = random.Random(seed)
    for name in ("left", "right"):
        relation = db.relation(name)
        for _ in range(inserts):
            relation.insert(rect(rng))
        victims = rng.sample(sorted(relation.objects), deletes)
        for oid in victims:
            relation.delete(oid)


def join_pairs(db, **spec_kwargs):
    spec = JoinSpec(algorithm="sj4", buffer_kb=64.0, **spec_kwargs)
    return sorted(db.join("left", "right", spec=spec).pairs)


class TestOverlayParity:
    def test_overlay_equals_rebuilt_join(self):
        db = build_db()
        mutate(db)
        overlaid = join_pairs(db)
        assert db.relation("left").delta_ops_pending > 0
        for name in ("left", "right"):
            assert db.relation(name).rebuild()
        assert join_pairs(db) == overlaid

    def test_overlay_equals_direct_mode(self):
        delta_db = build_db()
        direct_db = build_db(ingest="direct")
        mutate(delta_db)
        mutate(direct_db)
        assert join_pairs(delta_db) == join_pairs(direct_db)

    def test_refined_overlay_parity(self):
        db = build_db(n=60, seed=8)
        mutate(db, seed=9)
        spec = JoinSpec(algorithm="sj4", buffer_kb=64.0)
        overlaid = sorted(db.join("left", "right", spec=spec,
                                  refine=True).pairs)
        for name in ("left", "right"):
            db.relation(name).rebuild()
        rebuilt = sorted(db.join("left", "right", spec=spec,
                                 refine=True).pairs)
        assert overlaid == rebuilt

    @pytest.mark.parametrize("pred", [SpatialPredicate.CONTAINS,
                                      SpatialPredicate.WITHIN])
    def test_non_intersects_predicates(self, pred):
        db = build_db(n=50, seed=13)
        mutate(db, seed=14, inserts=12, deletes=5)
        overlaid = join_pairs(db, predicate=pred)
        for name in ("left", "right"):
            db.relation(name).rebuild()
        assert join_pairs(db, predicate=pred) == overlaid


class TestOverlayPieces:
    def test_hidden_pairs_are_dropped(self):
        db = build_db(n=40, seed=2)
        base_pairs = join_pairs(db)
        assert base_pairs, "seed produced no intersecting pairs"
        victim_l, victim_r = base_pairs[0]
        db.relation("left").delete(victim_l)
        db.relation("right").delete(victim_r)
        pairs = join_pairs(db)
        assert all(l != victim_l and r != victim_r for l, r in pairs)

    def test_filter_hidden_pairs_no_hidden_is_identity(self):
        pairs = [(1, 2), (3, 4)]
        assert filter_hidden_pairs(pairs, frozenset(),
                                   frozenset()) is pairs

    def test_empty_deltas_return_base_result(self):
        db = build_db(n=30, seed=6)
        snap_l = db.relation("left").snapshot()
        snap_r = db.relation("right").snapshot()
        spec = JoinSpec(algorithm="sj4", buffer_kb=64.0)
        base = db.join_base(snap_l, snap_r, spec)
        assert overlay_join(snap_l, snap_r, base) is base

    def test_overlay_counters(self):
        db = build_db(n=40, seed=2)
        base_pairs = join_pairs(db)
        victim = base_pairs[0][0]
        db.relation("left").delete(victim)
        new_oid = db.relation("left").insert(
            Rect(10, 10, 40, 40))     # big rect: guaranteed pairs
        snap_l = db.relation("left").snapshot()
        snap_r = db.relation("right").snapshot()
        spec = JoinSpec(algorithm="sj4", buffer_kb=64.0)
        base = db.join_base(snap_l, snap_r, spec)
        result = overlay_join(snap_l, snap_r, base)
        assert result.stats.hidden_filtered >= 1
        assert result.stats.delta_pairs >= 1
        assert any(l == new_oid for l, _ in result.pairs)
        assert result.stats.pairs_output == len(result.pairs)
