"""End-to-end integration: generate -> index -> join -> refine ->
persist -> reload, the full pipeline a library user would run."""

import pytest

from repro import (PAPER_COST_MODEL, RStarTree, RTreeParams, load_tree,
                   save_tree, spatial_join, id_spatial_join,
                   object_spatial_join, validate_rtree)
from repro.core import nested_loop_join
from repro.data import load_test
from repro.core import JoinSpec


@pytest.fixture(scope="module")
def pipeline():
    pair = load_test("A", scale=0.015)
    params = RTreeParams.from_page_size(2048)
    tree_r = RStarTree(params)
    tree_s = RStarTree(params)
    for rect, ref in pair.r.records:
        tree_r.insert(rect, ref)
    for rect, ref in pair.s.records:
        tree_s.insert(rect, ref)
    return pair, tree_r, tree_s


def test_trees_are_valid(pipeline):
    _, tree_r, tree_s = pipeline
    validate_rtree(tree_r)
    validate_rtree(tree_s)


def test_filter_step_matches_oracle(pipeline):
    pair, tree_r, tree_s = pipeline
    result = spatial_join(tree_r, tree_s,
                          spec=JoinSpec(algorithm="sj4", buffer_kb=128))
    oracle = nested_loop_join(pair.r.records, pair.s.records).pair_set()
    assert result.pair_set() == oracle


def test_refinement_pipeline(pipeline):
    pair, tree_r, tree_s = pipeline
    candidates = spatial_join(tree_r, tree_s,
                              spec=JoinSpec(algorithm="sj4", buffer_kb=128)).pairs
    survivors, stats = id_spatial_join(candidates, pair.r.objects,
                                       pair.s.objects)
    assert stats.candidates == len(candidates)
    assert 0 < stats.survivors <= stats.candidates
    # Exact survivors are a subset of the MBR candidates.
    assert set(survivors) <= set(candidates)
    # Oracle: brute-force exact intersection.
    expected = {(ir, js) for ir, js in candidates
                if pair.r.objects[ir].intersects(pair.s.objects[js])}
    assert set(survivors) == expected


def test_object_join_emits_geometry(pipeline):
    pair, tree_r, tree_s = pipeline
    candidates = spatial_join(tree_r, tree_s,
                              spec=JoinSpec(algorithm="sj4", buffer_kb=128)).pairs[:200]
    results, stats = object_spatial_join(candidates, pair.r.objects,
                                         pair.s.objects)
    assert stats.survivors == len(results)
    for item in results:
        # Line data: every surviving pair has crossing points.
        assert item.points or item.region is not None


def test_cost_model_integration(pipeline):
    _, tree_r, tree_s = pipeline
    result = spatial_join(tree_r, tree_s,
                          spec=JoinSpec(algorithm="sj4", buffer_kb=128))
    estimate = PAPER_COST_MODEL.estimate(result.stats)
    assert estimate.total_seconds > 0.0


def test_persist_roundtrip_preserves_join(pipeline, tmp_path):
    _, tree_r, tree_s = pipeline
    before = spatial_join(tree_r, tree_s,
                          spec=JoinSpec(algorithm="sj4", buffer_kb=64)).pair_set()
    path_r = str(tmp_path / "r.rt")
    path_s = str(tmp_path / "s.rt")
    save_tree(tree_r, path_r)
    save_tree(tree_s, path_s)
    loaded_r = load_tree(path_r)
    loaded_s = load_tree(path_s)
    after = spatial_join(loaded_r, loaded_s,
                         spec=JoinSpec(algorithm="sj4", buffer_kb=64)).pair_set()
    assert after == before
