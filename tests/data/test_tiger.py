"""Unit tests for the TIGER-like map generators."""

import pytest

from repro.data import (DEFAULT_WORLD, regions, rivers_railways, streets)
from repro.geometry import Polygon, Polyline
from repro.geometry.clipping import is_convex


class TestStreets:
    def test_count_and_type(self):
        ds = streets(2000, seed=1)
        assert len(ds) == 2000
        assert all(isinstance(o, Polyline) for o in ds.objects.values())

    def test_single_segment_records(self):
        ds = streets(500, seed=2)
        assert all(len(o) == 2 for o in ds.objects.values())

    def test_records_match_objects(self):
        ds = streets(300, seed=3)
        records = ds.records
        assert len(records) == 300
        for rect, oid in records:
            assert rect == ds.objects[oid].mbr()

    def test_inside_world(self):
        ds = streets(1000, seed=4)
        for obj in ds.objects.values():
            assert DEFAULT_WORLD.contains(obj.mbr())

    def test_deterministic(self):
        a = streets(200, seed=5)
        b = streets(200, seed=5)
        assert a.records == b.records

    def test_clustering(self):
        """Most street segments concentrate around cities."""
        from collections import Counter
        ds = streets(3000, seed=6)
        cells = Counter()
        for rect, _ in ds.records:
            cx, cy = rect.center()
            cells[(int(cx / (DEFAULT_WORLD.width / 20)),
                   int(cy / (DEFAULT_WORLD.height / 20)))] += 1
        # 400 cells; the top 20 (5%) must hold >40% of the segments.
        top = sum(count for _, count in cells.most_common(20))
        assert top > 0.4 * 3000

    def test_zero_and_negative(self):
        assert len(streets(0)) == 0
        with pytest.raises(ValueError):
            streets(-1)


class TestRiversRailways:
    def test_count_and_type(self):
        ds = rivers_railways(1500, seed=1)
        assert len(ds) == 1500
        assert all(isinstance(o, Polyline) and len(o) == 2
                   for o in ds.objects.values())

    def test_chains_are_locally_continuous(self):
        """Consecutive records of one chain share endpoints most of the
        time (rivers are split chains, not scattered segments)."""
        ds = rivers_railways(1000, seed=2)
        shared = 0
        for oid in range(len(ds) - 1):
            a = ds.objects[oid].vertices
            b = ds.objects[oid + 1].vertices
            if a[-1] == b[0]:
                shared += 1
        assert shared > 0.8 * (len(ds) - 1)

    def test_deterministic(self):
        assert rivers_railways(300, seed=9).records == \
            rivers_railways(300, seed=9).records

    def test_zero(self):
        assert len(rivers_railways(0)) == 0
        with pytest.raises(ValueError):
            rivers_railways(-2)


class TestRegions:
    def test_count_and_type(self):
        ds = regions(400, seed=1)
        assert len(ds) == 400
        assert all(isinstance(o, Polygon) for o in ds.objects.values())

    def test_regions_are_convex(self):
        """The generator promises convex cells (required by the
        object-join clipping)."""
        ds = regions(300, seed=2)
        assert all(is_convex(o) for o in ds.objects.values())

    def test_neighbouring_mbrs_overlap(self):
        """Region MBRs must overlap their neighbours (the property that
        makes test E selective)."""
        ds = regions(400, seed=3)
        records = ds.records
        overlapping = 0
        for i in range(0, 100):
            rect = records[i][0]
            if any(rect.intersects(records[j][0])
                   for j in range(len(records)) if j != i):
                overlapping += 1
        assert overlapping > 90

    def test_inside_world(self):
        ds = regions(200, seed=4)
        for obj in ds.objects.values():
            assert DEFAULT_WORLD.contains(obj.mbr())

    def test_zero(self):
        assert len(regions(0)) == 0
        with pytest.raises(ValueError):
            regions(-1)
