"""Unit tests for the generic rectangle generators."""

import pytest

from repro.data import (DEFAULT_WORLD, clustered_rects, degenerate_points,
                        uniform_rects)


def test_uniform_count_and_world():
    records = uniform_rects(500, seed=1)
    assert len(records) == 500
    for rect, _ in records:
        assert DEFAULT_WORLD.contains(rect)


def test_uniform_deterministic():
    assert uniform_rects(50, seed=7) == uniform_rects(50, seed=7)
    assert uniform_rects(50, seed=7) != uniform_rects(50, seed=8)


def test_uniform_ids_sequential():
    records = uniform_rects(20, seed=2)
    assert [ref for _, ref in records] == list(range(20))


def test_uniform_zero():
    assert uniform_rects(0) == []


def test_uniform_negative_rejected():
    with pytest.raises(ValueError):
        uniform_rects(-1)


def test_clustered_is_skewed():
    """Clustered data concentrates: the densest decile cell holds far
    more than 10% of the centers."""
    records = clustered_rects(2000, seed=3, clusters=5)
    from collections import Counter
    cells = Counter()
    for rect, _ in records:
        cx, cy = rect.center()
        cells[(int(cx / (DEFAULT_WORLD.width / 10)),
               int(cy / (DEFAULT_WORLD.height / 10)))] += 1
    assert max(cells.values()) > 2000 * 0.10


def test_clustered_validation():
    with pytest.raises(ValueError):
        clustered_rects(10, clusters=0)
    with pytest.raises(ValueError):
        clustered_rects(-5)


def test_degenerate_points_have_zero_area():
    records = degenerate_points(100, seed=4)
    assert len(records) == 100
    assert all(rect.area() == 0.0 for rect, _ in records)
