"""Unit tests for the named tests A-E."""

import pytest

from repro.data import (PAPER_CARDINALITIES, effective_scale, load_test,
                        scaled_count)


def test_paper_cardinalities_table8():
    assert PAPER_CARDINALITIES["A"] == (131_461, 128_971)
    assert PAPER_CARDINALITIES["C"] == (598_677, 128_971)
    assert PAPER_CARDINALITIES["E"] == (67_527, 33_696)


def test_effective_scale_argument_wins(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.5")
    assert effective_scale(0.25) == 0.25


def test_effective_scale_env(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.5")
    assert effective_scale() == 0.5


def test_effective_scale_default(monkeypatch):
    monkeypatch.delenv("REPRO_SCALE", raising=False)
    assert effective_scale() == 0.125


def test_effective_scale_rejects_nonpositive():
    with pytest.raises(ValueError):
        effective_scale(0.0)
    with pytest.raises(ValueError):
        effective_scale(-1.0)


def test_scaled_count_floor():
    assert scaled_count(131_461, 0.001) == 131
    assert scaled_count(200, 0.001) == 100   # never below 100


def test_load_test_cardinalities():
    pair = load_test("A", scale=0.01)
    assert pair.test == "A"
    assert len(pair.r) == scaled_count(131_461, 0.01)
    assert len(pair.s) == scaled_count(128_971, 0.01)


def test_unknown_test_rejected():
    with pytest.raises(ValueError):
        load_test("Z")


def test_lowercase_accepted():
    assert load_test("a", scale=0.002).test == "A"


def test_test_b_shares_r_side_with_a():
    """Tests A and B use the same street map as R (as in the paper)."""
    a = load_test("A", scale=0.005)
    b = load_test("B", scale=0.005)
    assert a.r.records == b.r.records
    assert a.r.name == b.r.name


def test_test_d_is_self_join():
    d = load_test("D", scale=0.005)
    assert d.r.records == d.s.records
    assert d.r is not d.s   # but built independently


def test_test_e_uses_regions():
    e = load_test("E", scale=0.01)
    from repro.geometry import Polygon
    assert all(isinstance(o, Polygon) for o in e.r.objects.values())
    assert len(e.r) > len(e.s)
