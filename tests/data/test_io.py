"""Unit tests for the rectangle file round trip."""

import pytest

from repro.data import RectFileError, load_records, save_records
from tests.conftest import make_rects


def test_roundtrip(tmp_path):
    records = make_rects(200, seed=1)
    path = str(tmp_path / "rects.bin")
    save_records(records, path)
    assert load_records(path) == records


def test_empty_roundtrip(tmp_path):
    path = str(tmp_path / "empty.bin")
    save_records([], path)
    assert load_records(path) == []


def test_negative_ids(tmp_path):
    from repro.geometry import Rect
    records = [(Rect(0, 0, 1, 1), -7), (Rect(2, 2, 3, 3), 2**40)]
    path = str(tmp_path / "ids.bin")
    save_records(records, path)
    assert load_records(path) == records


def test_bad_magic_rejected(tmp_path):
    path = tmp_path / "junk.bin"
    path.write_bytes(b"JUNKJUNK" + b"\x00" * 16)
    with pytest.raises(RectFileError):
        load_records(str(path))


def test_truncated_header_rejected(tmp_path):
    path = tmp_path / "short.bin"
    path.write_bytes(b"REP")
    with pytest.raises(RectFileError):
        load_records(str(path))


def test_truncated_records_rejected(tmp_path):
    records = make_rects(10, seed=2)
    path = tmp_path / "trunc.bin"
    save_records(records, str(path))
    data = path.read_bytes()
    path.write_bytes(data[:-10])
    with pytest.raises(RectFileError):
        load_records(str(path))


def test_save_is_atomic_over_existing_file(tmp_path):
    # A crash mid-save must leave the previous file intact: the write
    # stages to a temp sibling and only renames on success.
    from repro.geometry import Rect

    old = make_rects(50, seed=2)
    path = str(tmp_path / "rects.bin")
    save_records(old, path)

    # A record whose ref cannot be packed blows up mid-stream, after
    # dozens of records already hit the staging file.
    bad = make_rects(100, seed=3)
    bad[60] = (Rect(0, 0, 1, 1), "not-an-id")
    with pytest.raises(Exception):
        save_records(bad, path)
    assert load_records(path) == old
    leftovers = [name for name in tmp_path.iterdir()
                 if name.name != "rects.bin"]
    assert leftovers == []
