"""Selectivity calibration guards for the TIGER substitutes.

DESIGN.md's substitution argument rests on the generated data having
join selectivities near the paper's; these tests pin the calibrated
band at small scales so generator changes that break it fail fast.
(The full-scale numbers are recorded in docs/data.md.)
"""

import pytest

from repro.core import plane_sweep_join
from repro.data import load_test


@pytest.mark.parametrize("scale", [0.02, 0.05])
def test_test_a_selectivity_band(scale):
    pair = load_test("A", scale)
    result = plane_sweep_join(pair.r.records, pair.s.records)
    per_object = len(result) / len(pair.r)
    # Paper: 0.65 pairs per R object.  Calibrated band: within ~3x
    # across small scales (docs/data.md records the full-scale 0.83).
    assert 0.2 <= per_object <= 2.5, per_object


def test_test_d_self_join_is_denser_than_a():
    a = load_test("A", 0.02)
    d = load_test("D", 0.02)
    pairs_a = len(plane_sweep_join(a.r.records, a.s.records))
    pairs_d = len(plane_sweep_join(d.r.records, d.s.records))
    # The paper's D (505,583) dwarfs A (86,094); the shape must hold.
    assert pairs_d > 2 * pairs_a


def test_rivers_cross_cities():
    """The shared geography: a meaningful share of river segments must
    fall into the urban areas where streets concentrate, or test A's
    selectivity would collapse."""
    from repro.geometry import Rect
    pair = load_test("A", 0.02)
    street_cells = set()
    scale = 50
    world = pair.r.world
    for rect, _ in pair.r.records:
        cx, cy = rect.center()
        street_cells.add((int((cx - world.xl) / world.width * scale),
                          int((cy - world.yl) / world.height * scale)))
    in_urban = 0
    for rect, _ in pair.s.records:
        cx, cy = rect.center()
        cell = (int((cx - world.xl) / world.width * scale),
                int((cy - world.yl) / world.height * scale))
        if cell in street_cells:
            in_urban += 1
    assert in_urban / len(pair.s) > 0.25
