"""Tests for the TIGER/Line Record Type 1 reader/writer."""

import pytest

from repro.core import JoinSpec
from repro.data.tigerline import (CFCC_FAMILIES, TigerFormatError,
                                  TigerRecord, format_type1_line,
                                  parse_type1_line, read_type1,
                                  to_mbr_records, to_objects, write_type1)


@pytest.fixture
def sample_records():
    return [
        TigerRecord(tlid=100001, cfcc="A41",
                    from_point=(-122.419416, 37.774929),
                    to_point=(-122.418500, 37.775600)),
        TigerRecord(tlid=100002, cfcc="H11",
                    from_point=(-122.400000, 37.700000),
                    to_point=(-122.390000, 37.710000)),
        TigerRecord(tlid=100003, cfcc="B01",
                    from_point=(-122.380000, 37.720000),
                    to_point=(-122.370000, 37.730000)),
    ]


class TestRoundTrip:
    def test_format_then_parse(self, sample_records):
        for record in sample_records:
            line = format_type1_line(record)
            assert len(line) == 228
            parsed = parse_type1_line(line)
            assert parsed == record

    def test_file_roundtrip(self, tmp_path, sample_records):
        path = str(tmp_path / "TGR06075.RT1")
        assert write_type1(sample_records, path) == 3
        assert read_type1(path) == sample_records

    def test_cfcc_filter(self, tmp_path, sample_records):
        path = str(tmp_path / "chains.rt1")
        write_type1(sample_records, path)
        roads = read_type1(path, cfcc_prefixes=("A",))
        assert [r.tlid for r in roads] == [100001]
        water_rail = read_type1(path, cfcc_prefixes=("H", "B"))
        assert [r.tlid for r in water_rail] == [100002, 100003]

    def test_other_record_types_skipped(self, tmp_path, sample_records):
        path = str(tmp_path / "mixed.rt1")
        with open(path, "w") as f:
            f.write("2" + " " * 227 + "\n")          # Record Type 2
            f.write(format_type1_line(sample_records[0]) + "\n")
            f.write("\n")                             # blank line
        assert read_type1(path) == [sample_records[0]]


class TestParsing:
    def test_short_line_rejected(self):
        with pytest.raises(TigerFormatError):
            parse_type1_line("1" + " " * 40)

    def test_wrong_record_type_rejected(self, sample_records):
        line = format_type1_line(sample_records[0])
        with pytest.raises(TigerFormatError):
            parse_type1_line("2" + line[1:])

    def test_bad_tlid_rejected(self, sample_records):
        line = format_type1_line(sample_records[0])
        broken = line[:5] + "xxxxxxxxxx" + line[15:]
        with pytest.raises(TigerFormatError):
            parse_type1_line(broken)

    def test_bad_coordinate_rejected(self, sample_records):
        line = format_type1_line(sample_records[0])
        broken = line[:190] + "??????????" + line[200:]
        with pytest.raises(TigerFormatError):
            parse_type1_line(broken)

    def test_coordinate_overflow_rejected(self):
        record = TigerRecord(tlid=1, cfcc="A41",
                             from_point=(99999.0, 0.0),
                             to_point=(0.0, 0.0))
        with pytest.raises(TigerFormatError):
            format_type1_line(record)


class TestConversions:
    def test_family_classification(self, sample_records):
        assert sample_records[0].family == "road"
        assert sample_records[1].family == "hydrography"
        assert sample_records[2].family == "railroad"
        weird = TigerRecord(1, "Z99", (0, 0), (1, 1))
        assert weird.family == "unclassified"

    def test_families_cover_documented_prefixes(self):
        assert set("ABCDEFHX") <= set(CFCC_FAMILIES)

    def test_mbr_records(self, sample_records):
        records = to_mbr_records(sample_records)
        assert len(records) == 3
        rect, tlid = records[0]
        assert tlid == 100001
        assert rect.xl == pytest.approx(-122.419416)
        assert rect.xu == pytest.approx(-122.4185)

    def test_objects(self, sample_records):
        objects = to_objects(sample_records)
        assert set(objects) == {100001, 100002, 100003}
        assert len(objects[100001]) == 2

    def test_pipeline_into_tree_and_join(self, tmp_path):
        """Synthetic streets exported as TIGER, re-imported, joined."""
        from repro.core import spatial_join
        from repro.data import streets
        from tests.conftest import build_rstar

        dataset = streets(400, seed=9)
        # Scale world coordinates into plausible lat/long magnitudes.
        records = []
        for oid, obj in dataset.objects.items():
            (x1, y1), (x2, y2) = obj.vertices
            records.append(TigerRecord(
                tlid=oid, cfcc="A41",
                from_point=(x1 / 1e6 - 122.0, y1 / 1e6 + 37.0),
                to_point=(x2 / 1e6 - 122.0, y2 / 1e6 + 37.0)))
        path = str(tmp_path / "streets.rt1")
        write_type1(records, path)
        reloaded = read_type1(path, cfcc_prefixes=("A",))
        assert len(reloaded) == 400
        tree = build_rstar(to_mbr_records(reloaded), page_size=256)
        result = spatial_join(tree, tree,
                              spec=JoinSpec(algorithm="sj4", buffer_kb=16))
        assert len(result) >= 400   # at least the diagonal
