"""Unit tests for the page stores."""

import pytest

from repro.storage import FilePageStore, MemoryPageStore


class TestMemoryPageStore:
    def test_allocate_write_read(self):
        store = MemoryPageStore()
        page = store.allocate()
        store.write(page, {"hello": 1})
        assert store.read(page) == {"hello": 1}

    def test_sequential_ids(self):
        store = MemoryPageStore()
        assert [store.allocate() for _ in range(3)] == [0, 1, 2]

    def test_free_and_reuse(self):
        store = MemoryPageStore()
        a = store.allocate()
        store.free(a)
        b = store.allocate()
        assert b == a
        assert len(store) == 1

    def test_read_unallocated_raises(self):
        store = MemoryPageStore()
        with pytest.raises(KeyError):
            store.read(42)

    def test_write_unallocated_raises(self):
        store = MemoryPageStore()
        with pytest.raises(KeyError):
            store.write(42, "x")

    def test_free_unallocated_raises(self):
        store = MemoryPageStore()
        with pytest.raises(KeyError):
            store.free(0)

    def test_double_free_raises(self):
        store = MemoryPageStore()
        page = store.allocate()
        store.free(page)
        with pytest.raises(KeyError):
            store.free(page)

    def test_page_ids(self):
        store = MemoryPageStore()
        ids = [store.allocate() for _ in range(4)]
        store.free(ids[1])
        assert sorted(store.page_ids()) == [0, 2, 3]


class TestFilePageStore:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "pages.bin")
        with FilePageStore(path, 64) as store:
            a = store.allocate()
            b = store.allocate()
            store.write(a, b"hello")
            store.write(b, b"world!")
            assert store.read(a) == b"hello"
            assert store.read(b) == b"world!"

    def test_persists_across_reopen(self, tmp_path):
        path = str(tmp_path / "pages.bin")
        with FilePageStore(path, 64) as store:
            page = store.allocate()
            store.write(page, b"payload")
        with FilePageStore(path, 64, create=False) as store:
            assert store.read(page) == b"payload"

    def test_payload_too_large(self, tmp_path):
        path = str(tmp_path / "pages.bin")
        with FilePageStore(path, 16) as store:
            page = store.allocate()
            with pytest.raises(ValueError):
                store.write(page, b"x" * 13)

    def test_non_bytes_rejected(self, tmp_path):
        path = str(tmp_path / "pages.bin")
        with FilePageStore(path, 64) as store:
            page = store.allocate()
            with pytest.raises(TypeError):
                store.write(page, "not bytes")

    def test_free_and_reuse(self, tmp_path):
        path = str(tmp_path / "pages.bin")
        with FilePageStore(path, 64) as store:
            a = store.allocate()
            store.free(a)
            assert store.allocate() == a

    def test_unallocated_access_raises(self, tmp_path):
        path = str(tmp_path / "pages.bin")
        with FilePageStore(path, 64) as store:
            with pytest.raises(KeyError):
                store.read(7)
            with pytest.raises(KeyError):
                store.write(7, b"")
            with pytest.raises(KeyError):
                store.free(7)

    def test_tiny_page_size_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            FilePageStore(str(tmp_path / "x"), 4)

    def test_empty_payload(self, tmp_path):
        path = str(tmp_path / "pages.bin")
        with FilePageStore(path, 64) as store:
            page = store.allocate()
            store.write(page, b"")
            assert store.read(page) == b""

    def test_page_ids_sorted(self, tmp_path):
        path = str(tmp_path / "pages.bin")
        with FilePageStore(path, 64) as store:
            ids = [store.allocate() for _ in range(3)]
            assert store.page_ids() == sorted(ids)

    def test_recycled_page_is_zeroed(self, tmp_path):
        # Regression: allocate used to hand back a freed page with the
        # previous tenant's payload still on disk, so a read before the
        # first write returned stale data.
        path = str(tmp_path / "pages.bin")
        with FilePageStore(path, 64) as store:
            page = store.allocate()
            store.write(page, b"previous tenant")
            store.free(page)
            recycled = store.allocate()
            assert recycled == page
            assert store.read(recycled) == b""

    def test_fresh_page_is_zeroed(self, tmp_path):
        path = str(tmp_path / "pages.bin")
        with FilePageStore(path, 64) as store:
            assert store.read(store.allocate()) == b""

    def test_torn_tail_rejected_on_reopen(self, tmp_path):
        path = str(tmp_path / "pages.bin")
        with FilePageStore(path, 64) as store:
            page = store.allocate()
            store.write(page, b"payload")
        with open(path, "ab") as handle:
            handle.write(b"\x00" * 10)    # partial trailing page
        with pytest.raises(ValueError, match="torn tail"):
            FilePageStore(path, 64, create=False)

    def test_page_multiple_file_reopens(self, tmp_path):
        path = str(tmp_path / "pages.bin")
        with FilePageStore(path, 64) as store:
            for _ in range(3):
                store.allocate()
        with FilePageStore(path, 64, create=False) as store:
            assert len(store) == 3
