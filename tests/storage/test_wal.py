"""Write-ahead log framing, torn-tail recovery, sync modes,
kill-points."""

import os

import pytest

from repro.storage.faults import KillPlan, KillSwitch, SimulatedCrash
from repro.storage.wal import WalRecord, WriteAheadLog, replay, scan


def _payloads(records):
    return [record.payload for record in records]


class TestAppendScan:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "wal.log")
        with WriteAheadLog(path) as wal:
            for i in range(5):
                assert wal.append({"op": "insert", "i": i}) == i + 1
        records, valid, torn = scan(path)
        assert torn == 0
        assert valid == os.path.getsize(path)
        assert [record.lsn for record in records] == [1, 2, 3, 4, 5]
        assert _payloads(records) == [{"op": "insert", "i": i}
                                      for i in range(5)]

    def test_missing_file_scans_empty(self, tmp_path):
        assert scan(str(tmp_path / "absent.log")) == ([], 0, 0)

    def test_replay_filters_by_lsn(self, tmp_path):
        path = str(tmp_path / "wal.log")
        with WriteAheadLog(path) as wal:
            for i in range(6):
                wal.append({"i": i})
        assert [record.lsn for record in replay(path, after_lsn=4)] \
            == [5, 6]

    def test_lsn_resumes_across_open(self, tmp_path):
        path = str(tmp_path / "wal.log")
        with WriteAheadLog(path) as wal:
            wal.append({"a": 1})
            wal.append({"a": 2})
        wal, records, torn = WriteAheadLog.open(path)
        with wal:
            assert torn == 0
            assert len(records) == 2
            assert wal.append({"a": 3}) == 3

    def test_rejects_bad_sync_mode(self, tmp_path):
        with pytest.raises(ValueError):
            WriteAheadLog(str(tmp_path / "w"), sync="sometimes")

    def test_rejects_bad_batch_every(self, tmp_path):
        with pytest.raises(ValueError):
            WriteAheadLog(str(tmp_path / "w"), batch_every=0)


class TestTornTail:
    def _write_three(self, path):
        with WriteAheadLog(path) as wal:
            for i in range(3):
                wal.append({"i": i})

    def test_partial_frame_is_truncated(self, tmp_path):
        path = str(tmp_path / "wal.log")
        self._write_three(path)
        clean_size = os.path.getsize(path)
        with open(path, "ab") as handle:
            handle.write(b"\x40\x00\x00\x00garbage-torn-frame")
        records, valid, torn = scan(path)
        assert len(records) == 3
        assert valid == clean_size
        assert torn > 0
        wal, records, torn = WriteAheadLog.open(path)
        wal.close()
        assert torn > 0
        assert os.path.getsize(path) == clean_size

    def test_corrupt_crc_ends_scan(self, tmp_path):
        path = str(tmp_path / "wal.log")
        self._write_three(path)
        # Flip a payload byte of the *second* frame: scan keeps the
        # first record only.
        data = bytearray(open(path, "rb").read())
        records, _valid, _ = scan(path)
        first_end = None
        offset = 0
        import struct
        frame = struct.Struct("<IIQ")
        length = frame.unpack_from(data, 0)[0]
        first_end = frame.size + length
        data[first_end + frame.size + 2] ^= 0xFF
        with open(path, "wb") as handle:
            handle.write(data)
        records, valid, torn = scan(path)
        assert len(records) == 1
        assert valid == first_end
        assert torn == len(data) - first_end

    def test_append_after_truncation_is_clean(self, tmp_path):
        path = str(tmp_path / "wal.log")
        self._write_three(path)
        with open(path, "ab") as handle:
            handle.write(b"\xff" * 7)   # shorter than a header
        wal, records, torn = WriteAheadLog.open(path)
        with wal:
            assert torn == 7
            wal.append({"i": 99})
        records, _valid, torn = scan(path)
        assert torn == 0
        assert _payloads(records)[-1] == {"i": 99}
        assert records[-1].lsn == 4


class TestSyncModes:
    def test_always_syncs_every_append(self, tmp_path):
        with WriteAheadLog(str(tmp_path / "w"), sync="always") as wal:
            for i in range(4):
                wal.append({"i": i})
            assert wal.syncs == 4

    def test_batch_groups_syncs(self, tmp_path):
        with WriteAheadLog(str(tmp_path / "w"), sync="batch",
                           batch_every=8) as wal:
            for i in range(20):
                wal.append({"i": i})
            assert wal.syncs == 2          # at appends 8 and 16
        # close() drains the remaining 4.

    def test_explicit_sync_and_close_drain(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "w"), sync="batch",
                            batch_every=100)
        wal.append({"i": 0})
        wal.sync()
        assert wal.syncs == 1
        wal.sync()                          # nothing pending: no-op
        assert wal.syncs == 1
        wal.append({"i": 1})
        wal.close()
        assert wal.syncs == 2


class TestKillPoints:
    def _switch(self, point):
        return KillSwitch(KillPlan(seed=1, points={point: 1.0}))

    def test_before_append_loses_nothing(self, tmp_path):
        path = str(tmp_path / "w")
        wal = WriteAheadLog(path, kill=self._switch("wal.before_append"))
        with pytest.raises(SimulatedCrash):
            wal.append({"i": 0})
        wal._file.close()
        assert scan(path) == ([], 0, 0)

    def test_mid_append_leaves_a_real_torn_tail(self, tmp_path):
        path = str(tmp_path / "w")
        wal = WriteAheadLog(path, kill=self._switch("wal.mid_append"))
        with pytest.raises(SimulatedCrash):
            wal.append({"i": 0})
        wal._file.close()
        assert os.path.getsize(path) > 0    # half a frame hit the disk
        records, valid, torn = scan(path)
        assert records == []
        assert valid == 0
        assert torn > 0
        wal, records, torn = WriteAheadLog.open(path)
        with wal:
            assert records == []
            assert wal.append({"i": 1}) == 1

    def test_after_append_is_durable_but_unacked(self, tmp_path):
        path = str(tmp_path / "w")
        wal = WriteAheadLog(path, kill=self._switch("wal.after_append"))
        with pytest.raises(SimulatedCrash):
            wal.append({"i": 0})
        wal._file.close()
        records, _valid, torn = scan(path)
        assert torn == 0
        assert _payloads(records) == [{"i": 0}]

    def test_max_kills_limits_crashes(self, tmp_path):
        switch = KillSwitch(KillPlan(seed=1,
                                     points={"wal.before_append": 1.0},
                                     max_kills=1))
        path = str(tmp_path / "w")
        wal = WriteAheadLog(path, kill=switch)
        with pytest.raises(SimulatedCrash):
            wal.append({"i": 0})
        # The switch is spent; subsequent appends proceed.
        assert wal.append({"i": 1}) == 1
        wal.close()


class TestMetrics:
    def test_counters_mirrored(self, tmp_path):
        from repro.obs.core import Observability
        obs = Observability()
        with WriteAheadLog(str(tmp_path / "w"),
                           metrics=obs.metrics) as wal:
            wal.append({"i": 0})
            wal.append({"i": 1})
        counters = obs.metrics.counters
        assert counters["wal.appends"] == 2
        assert counters["wal.syncs"] >= 2
        assert counters["wal.bytes"] > 0
        assert obs.metrics.gauges["wal.last_lsn"] == 2
