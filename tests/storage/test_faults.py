"""Unit tests for the deterministic fault-injection layer."""

import pickle

import pytest

from repro.storage import (FaultInjectingPageStore, FaultPlan,
                           FilePageStore, MemoryPageStore,
                           StorageStatistics, TransientIOError,
                           pristine_store)


def _memory_store(pages=8):
    store = MemoryPageStore()
    for i in range(pages):
        page = store.allocate()
        store.write(page, f"payload-{i}")
    return store


# ----------------------------------------------------------------------
# FaultPlan
# ----------------------------------------------------------------------

class TestFaultPlan:
    def test_probabilities_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(read_transient_p=1.5)
        with pytest.raises(ValueError):
            FaultPlan(bit_flip_p=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(max_transients_per_page=-1)

    def test_draws_are_deterministic(self):
        a = FaultPlan(seed=7, read_transient_p=0.5)
        b = FaultPlan(seed=7, read_transient_p=0.5)
        for page in range(50):
            for occurrence in (1, 2, 3):
                assert a.fires("read", 0.5, page, occurrence) == \
                    b.fires("read", 0.5, page, occurrence)

    def test_draws_are_roughly_uniform(self):
        plan = FaultPlan(seed=11)
        draws = [plan._draw("read", page, occ)
                 for page in range(300) for occ in (1, 2)]
        fraction = sum(d < 0.25 for d in draws) / len(draws)
        assert 0.15 < fraction < 0.35

    def test_different_seeds_differ(self):
        a = FaultPlan(seed=1, read_transient_p=0.5)
        b = FaultPlan(seed=2, read_transient_p=0.5)
        outcomes_a = [a.fires("read", 0.5, p, 1) for p in range(100)]
        outcomes_b = [b.fires("read", 0.5, p, 1) for p in range(100)]
        assert outcomes_a != outcomes_b

    def test_reseeded_changes_the_stream(self):
        plan = FaultPlan(seed=3, read_transient_p=0.5)
        salted = plan.reseeded(1)
        assert salted.seed != plan.seed
        assert salted.read_transient_p == plan.read_transient_p
        assert plan.reseeded(0) is plan

    def test_zero_probability_never_fires(self):
        plan = FaultPlan(seed=9)
        assert not any(plan.fires("read", 0.0, p, 1) for p in range(100))


# ----------------------------------------------------------------------
# FaultInjectingPageStore: transients
# ----------------------------------------------------------------------

class TestTransients:
    def test_certain_read_fault_recorded(self):
        store = FaultInjectingPageStore(
            _memory_store(),
            FaultPlan(seed=1, read_transient_p=1.0,
                      max_transients_per_page=None))
        with pytest.raises(TransientIOError):
            store.read_faulty(0)
        assert store.stats.transient_read_faults == 1
        assert store.stats.total_injected == 1

    def test_plain_read_never_faults(self):
        # tree.node()-style structural access bypasses the fault plan.
        store = FaultInjectingPageStore(
            _memory_store(),
            FaultPlan(seed=1, read_transient_p=1.0,
                      max_transients_per_page=None))
        assert store.read(0) == "payload-0"
        assert store.stats.total_injected == 0

    def test_per_page_transient_cap(self):
        store = FaultInjectingPageStore(
            _memory_store(),
            FaultPlan(seed=1, read_transient_p=1.0,
                      max_transients_per_page=2))
        for _ in range(2):
            with pytest.raises(TransientIOError):
                store.read_faulty(0)
        assert store.read_faulty(0) == "payload-0"
        assert store.stats.transient_read_faults == 2

    def test_write_transient(self):
        store = FaultInjectingPageStore(
            _memory_store(),
            FaultPlan(seed=1, write_transient_p=1.0,
                      max_transients_per_page=1))
        with pytest.raises(TransientIOError):
            store.write(0, "new")
        store.write(0, "new")  # cap reached: second attempt lands
        assert store.read(0) == "new"
        assert store.stats.transient_write_faults == 1

    def test_same_seed_same_fault_sequence(self):
        def run():
            store = FaultInjectingPageStore(
                _memory_store(),
                FaultPlan(seed=77, read_transient_p=0.4,
                          max_transients_per_page=None))
            outcome = []
            for page in range(8):
                for _ in range(3):
                    try:
                        store.read_faulty(page)
                        outcome.append("ok")
                    except TransientIOError:
                        outcome.append("fault")
            return outcome, store.stats.snapshot()

        first, stats_a = run()
        second, stats_b = run()
        assert first == second
        assert stats_a == stats_b
        assert "fault" in first and "ok" in first


# ----------------------------------------------------------------------
# FaultInjectingPageStore: corruption of byte payloads
# ----------------------------------------------------------------------

class TestCorruption:
    def test_bit_flip_corrupts_file_payload(self, tmp_path):
        inner = FilePageStore(str(tmp_path / "p.bin"), 64)
        store = FaultInjectingPageStore(
            inner, FaultPlan(seed=5, bit_flip_p=1.0))
        page = store.allocate()
        store.write(page, b"hello world")
        assert store.stats.bit_flips == 1
        damaged = store.read(page)
        assert damaged != b"hello world"
        assert len(damaged) == len(b"hello world")
        # Exactly one bit differs.
        diff = sum(bin(a ^ b).count("1")
                   for a, b in zip(damaged, b"hello world"))
        assert diff == 1

    def test_torn_write_halves_the_payload(self, tmp_path):
        inner = FilePageStore(str(tmp_path / "p.bin"), 64)
        store = FaultInjectingPageStore(
            inner, FaultPlan(seed=5, torn_write_p=1.0))
        page = store.allocate()
        store.write(page, b"0123456789")
        assert store.stats.torn_writes == 1
        assert store.read(page) == b"01234"

    def test_object_payloads_are_never_mutated(self):
        # MemoryPageStore holds Python objects; bit flips are a
        # byte-level fault and must not touch them.
        store = FaultInjectingPageStore(
            _memory_store(),
            FaultPlan(seed=5, bit_flip_p=1.0, torn_write_p=1.0))
        store.write(0, {"a": 1})
        assert store.read(0) == {"a": 1}
        assert store.stats.total_injected == 0


# ----------------------------------------------------------------------
# Wrapper mechanics
# ----------------------------------------------------------------------

class TestWrapper:
    def test_passthrough_interface(self):
        inner = _memory_store(3)
        store = FaultInjectingPageStore(inner, FaultPlan())
        assert len(store) == 3
        assert store.page_ids() == inner.page_ids()
        page = store.allocate()
        store.write(page, "x")
        assert store.read(page) == "x"
        store.free(page)
        assert len(store) == 3

    def test_attribute_delegation(self, tmp_path):
        inner = FilePageStore(str(tmp_path / "p.bin"), 64)
        store = FaultInjectingPageStore(inner, FaultPlan())
        assert store.page_size == 64
        assert store.path == inner.path
        store.flush()
        store.close()

    def test_refuses_to_stack(self):
        wrapped = FaultInjectingPageStore(_memory_store(), FaultPlan())
        with pytest.raises(ValueError):
            FaultInjectingPageStore(wrapped, FaultPlan())

    def test_pristine_store_unwraps(self):
        inner = _memory_store()
        wrapped = FaultInjectingPageStore(inner, FaultPlan())
        assert pristine_store(wrapped) is inner
        assert pristine_store(inner) is inner

    def test_pickles_with_its_plan(self):
        store = FaultInjectingPageStore(
            _memory_store(),
            FaultPlan(seed=3, read_transient_p=1.0,
                      max_transients_per_page=None))
        clone = pickle.loads(pickle.dumps(store))
        assert clone.plan == store.plan
        with pytest.raises(TransientIOError):
            clone.read_faulty(0)

    def test_reseed_restarts_occurrence_counters(self):
        store = FaultInjectingPageStore(
            _memory_store(),
            FaultPlan(seed=3, read_transient_p=0.5,
                      max_transients_per_page=1))
        for page in range(8):
            try:
                store.read_faulty(page)
            except TransientIOError:
                pass
        store.reseed(1)
        assert store._occurrences == {}
        assert store._transients == {}


# ----------------------------------------------------------------------
# StorageStatistics
# ----------------------------------------------------------------------

class TestStorageStatistics:
    def test_accumulate_and_reset(self):
        stats = StorageStatistics()
        stats.transient_read_faults = 2
        stats.bit_flips = 1
        other = StorageStatistics()
        other.transient_read_faults = 3
        stats += other
        assert stats.transient_read_faults == 5
        assert stats.total_injected == 6
        snap = stats.snapshot()
        assert snap == stats
        stats.reset()
        assert stats.total_injected == 0
        assert snap.total_injected == 6
