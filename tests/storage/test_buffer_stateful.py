"""Model-based test: LRUBuffer against a reference implementation."""

from collections import OrderedDict

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (RuleBasedStateMachine, invariant, rule)

from repro.storage import LRUBuffer

KEYS = st.tuples(st.integers(min_value=0, max_value=1),
                 st.integers(min_value=0, max_value=15))


class LRUModel:
    """Straightforward reference: ordered dict + pinned set."""

    def __init__(self, frames):
        self.frames = frames
        self.entries = OrderedDict()
        self.pinned = set()

    def lookup(self, key):
        if key in self.entries:
            self.entries.move_to_end(key)
            return True
        return False

    def admit(self, key):
        if self.frames == 0:
            return None
        if key in self.entries:
            self.entries.move_to_end(key)
            return None
        evicted = None
        if len(self.entries) >= self.frames:
            for candidate in self.entries:
                if candidate not in self.pinned:
                    evicted = candidate
                    break
            if evicted is None:
                return None
            del self.entries[evicted]
        self.entries[key] = None
        return evicted

    def pin(self, key):
        if key in self.entries:
            self.pinned.add(key)

    def unpin(self, key):
        self.pinned.discard(key)

    def drop(self, key):
        self.entries.pop(key, None)
        self.pinned.discard(key)


class BufferMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.frames = 3
        self.buffer = LRUBuffer(self.frames)
        self.model = LRUModel(self.frames)

    @rule(key=KEYS)
    def lookup(self, key):
        assert self.buffer.lookup(key) == self.model.lookup(key)

    @rule(key=KEYS)
    def admit(self, key):
        assert self.buffer.admit(key) == self.model.admit(key)

    @rule(key=KEYS)
    def pin(self, key):
        self.buffer.pin(key)
        self.model.pin(key)

    @rule(key=KEYS)
    def unpin(self, key):
        self.buffer.unpin(key)
        self.model.unpin(key)

    @rule(key=KEYS)
    def drop(self, key):
        self.buffer.drop(key)
        self.model.drop(key)

    @invariant()
    def same_residents_in_same_order(self):
        assert self.buffer.resident_keys() == \
            tuple(self.model.entries)

    @invariant()
    def capacity_respected(self):
        assert len(self.buffer) <= self.frames


TestBufferStateful = BufferMachine.TestCase
TestBufferStateful.settings = settings(max_examples=60,
                                       stateful_step_count=40,
                                       deadline=None)
