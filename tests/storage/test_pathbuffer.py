"""Unit tests for the path buffer."""

import pytest

from repro.storage import PathBuffer


def test_empty_never_hits():
    pb = PathBuffer()
    assert not pb.hit(0, 0)


def test_record_and_hit():
    pb = PathBuffer()
    pb.record(10, 0)
    assert pb.hit(10, 0)
    assert not pb.hit(11, 0)
    assert not pb.hit(10, 1)


def test_descend_path():
    pb = PathBuffer()
    pb.record(1, 0)
    pb.record(2, 1)
    pb.record(3, 2)
    assert pb.depth() == 3
    assert pb.hit(1, 0) and pb.hit(2, 1) and pb.hit(3, 2)


def test_replace_truncates_deeper_levels():
    pb = PathBuffer()
    pb.record(1, 0)
    pb.record(2, 1)
    pb.record(3, 2)
    pb.record(9, 1)         # move to a sibling subtree
    assert pb.hit(9, 1)
    assert not pb.hit(3, 2)  # the abandoned subtree is gone
    assert pb.hit(1, 0)      # ancestors stay
    assert pb.depth() == 2


def test_cannot_skip_levels():
    pb = PathBuffer()
    pb.record(1, 0)
    with pytest.raises(ValueError):
        pb.record(5, 2)


def test_current():
    pb = PathBuffer()
    assert pb.current(0) is None
    pb.record(4, 0)
    assert pb.current(0) == 4
    assert pb.current(3) is None


def test_clear():
    pb = PathBuffer()
    pb.record(1, 0)
    pb.clear()
    assert pb.depth() == 0
    assert not pb.hit(1, 0)
