"""Unit tests for IO statistics."""

from repro.storage import IOStatistics


def test_initial_zero():
    stats = IOStatistics()
    assert stats.disk_reads == 0
    assert stats.logical_reads == 0


def test_logical_reads_sums_all_sources():
    stats = IOStatistics()
    stats.disk_reads = 3
    stats.lru_hits = 2
    stats.path_hits = 5
    assert stats.logical_reads == 10


def test_reset():
    stats = IOStatistics()
    stats.disk_reads = 3
    stats.evictions = 1
    stats.reset()
    assert stats.disk_reads == 0 and stats.evictions == 0


def test_snapshot_is_independent():
    stats = IOStatistics()
    stats.disk_reads = 1
    snap = stats.snapshot()
    stats.disk_reads = 99
    assert snap.disk_reads == 1
    assert snap.lru_hits == 0


def test_to_dict_covers_every_slot():
    stats = IOStatistics()
    stats.disk_reads = 3
    stats.lru_hits = 2
    data = stats.to_dict()
    assert set(data) == set(IOStatistics.__slots__)
    assert data["disk_reads"] == 3


def test_from_dict_round_trip():
    stats = IOStatistics()
    stats.disk_reads = 3
    stats.evictions = 4
    clone = IOStatistics.from_dict(stats.to_dict())
    assert clone.to_dict() == stats.to_dict()


def test_from_dict_rejects_unknown_fields():
    import pytest
    with pytest.raises(ValueError, match="unknown"):
        IOStatistics.from_dict({"disk_reads": 1, "martian_reads": 2})
