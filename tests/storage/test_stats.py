"""Unit tests for IO statistics."""

from repro.storage import IOStatistics


def test_initial_zero():
    stats = IOStatistics()
    assert stats.disk_reads == 0
    assert stats.logical_reads == 0


def test_logical_reads_sums_all_sources():
    stats = IOStatistics()
    stats.disk_reads = 3
    stats.lru_hits = 2
    stats.path_hits = 5
    assert stats.logical_reads == 10


def test_reset():
    stats = IOStatistics()
    stats.disk_reads = 3
    stats.evictions = 1
    stats.reset()
    assert stats.disk_reads == 0 and stats.evictions == 0


def test_snapshot_is_independent():
    stats = IOStatistics()
    stats.disk_reads = 1
    snap = stats.snapshot()
    stats.disk_reads = 99
    assert snap.disk_reads == 1
    assert snap.lru_hits == 0
