"""Unit tests for the LRU buffer with pinning."""

import pytest

from repro.storage import LRUBuffer


def key(n):
    return (0, n)


class TestBasicLRU:
    def test_empty_lookup_misses(self):
        buf = LRUBuffer(2)
        assert not buf.lookup(key(1))

    def test_admit_then_hit(self):
        buf = LRUBuffer(2)
        buf.admit(key(1))
        assert buf.lookup(key(1))

    def test_eviction_order_is_lru(self):
        buf = LRUBuffer(2)
        buf.admit(key(1))
        buf.admit(key(2))
        evicted = buf.admit(key(3))
        assert evicted == key(1)
        assert not buf.lookup(key(1))
        assert buf.lookup(key(2)) and buf.lookup(key(3))

    def test_lookup_refreshes_recency(self):
        buf = LRUBuffer(2)
        buf.admit(key(1))
        buf.admit(key(2))
        buf.lookup(key(1))           # 1 becomes MRU
        evicted = buf.admit(key(3))
        assert evicted == key(2)

    def test_readmit_refreshes_without_eviction(self):
        buf = LRUBuffer(2)
        buf.admit(key(1))
        buf.admit(key(2))
        assert buf.admit(key(1)) is None   # already resident
        evicted = buf.admit(key(3))
        assert evicted == key(2)

    def test_zero_frames_never_caches(self):
        buf = LRUBuffer(0)
        assert buf.admit(key(1)) is None
        assert not buf.lookup(key(1))
        assert len(buf) == 0

    def test_negative_frames_rejected(self):
        with pytest.raises(ValueError):
            LRUBuffer(-1)

    def test_contains_and_len(self):
        buf = LRUBuffer(3)
        buf.admit(key(1))
        assert key(1) in buf
        assert len(buf) == 1

    def test_drop(self):
        buf = LRUBuffer(2)
        buf.admit(key(1))
        buf.pin(key(1))
        buf.drop(key(1))
        assert not buf.lookup(key(1))
        assert not buf.is_pinned(key(1))

    def test_clear(self):
        buf = LRUBuffer(2)
        buf.admit(key(1))
        buf.pin(key(1))
        buf.clear()
        assert len(buf) == 0
        assert not buf.is_pinned(key(1))


class TestPinning:
    def test_pinned_frame_survives_eviction(self):
        buf = LRUBuffer(2)
        buf.admit(key(1))
        buf.admit(key(2))
        buf.pin(key(1))
        evicted = buf.admit(key(3))
        assert evicted == key(2)       # 1 was LRU but pinned
        assert buf.lookup(key(1))

    def test_unpin_restores_evictability(self):
        buf = LRUBuffer(2)
        buf.admit(key(1))
        buf.admit(key(2))
        buf.pin(key(1))
        buf.unpin(key(1))
        evicted = buf.admit(key(3))
        assert evicted == key(1)

    def test_pin_nonresident_is_noop(self):
        buf = LRUBuffer(2)
        buf.pin(key(9))
        assert not buf.is_pinned(key(9))

    def test_pin_with_zero_frames_is_noop(self):
        buf = LRUBuffer(0)
        buf.admit(key(1))
        buf.pin(key(1))
        assert not buf.is_pinned(key(1))

    def test_all_pinned_full_buffer_skips_caching(self):
        buf = LRUBuffer(1)
        buf.admit(key(1))
        buf.pin(key(1))
        assert buf.admit(key(2)) is None
        assert not buf.lookup(key(2))
        assert buf.lookup(key(1))

    def test_resident_keys_order(self):
        buf = LRUBuffer(3)
        buf.admit(key(1))
        buf.admit(key(2))
        buf.lookup(key(1))
        assert buf.resident_keys() == (key(2), key(1))
