"""Unit tests for page-size arithmetic."""

import pytest

from repro.storage import PAPER_PAGE_SIZES, frames_for_buffer, page_size_kb


def test_paper_page_sizes():
    assert PAPER_PAGE_SIZES == (1024, 2048, 4096, 8192)


def test_page_size_kb():
    assert page_size_kb(1024) == 1.0
    assert page_size_kb(8192) == 8.0


def test_frames_for_buffer_exact():
    assert frames_for_buffer(32, 4096) == 8
    assert frames_for_buffer(512, 1024) == 512


def test_frames_for_buffer_zero():
    assert frames_for_buffer(0, 4096) == 0


def test_frames_for_buffer_rounds_down():
    assert frames_for_buffer(5, 4096) == 1
    assert frames_for_buffer(3, 4096) == 0


def test_frames_for_buffer_validation():
    with pytest.raises(ValueError):
        frames_for_buffer(-1, 4096)
    with pytest.raises(ValueError):
        frames_for_buffer(8, 0)
