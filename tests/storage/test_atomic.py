"""Crash-safe whole-file publication (temp + fsync + rename)."""

import os

import pytest

from repro.storage.atomic import (atomic_write, fsync_directory,
                                  fsync_path, tempname)


class TestAtomicWrite:
    def test_writes_and_replaces(self, tmp_path):
        path = str(tmp_path / "out.bin")
        with atomic_write(path) as handle:
            handle.write(b"hello")
        with open(path, "rb") as handle:
            assert handle.read() == b"hello"

    def test_text_mode(self, tmp_path):
        path = str(tmp_path / "out.txt")
        with atomic_write(path, "w") as handle:
            handle.write("line\n")
        with open(path) as handle:
            assert handle.read() == "line\n"

    def test_requires_write_mode(self, tmp_path):
        with pytest.raises(ValueError):
            with atomic_write(str(tmp_path / "x"), "rb"):
                pass

    def test_overwrites_existing(self, tmp_path):
        path = str(tmp_path / "out.bin")
        with open(path, "wb") as handle:
            handle.write(b"old contents")
        with atomic_write(path) as handle:
            handle.write(b"new")
        with open(path, "rb") as handle:
            assert handle.read() == b"new"

    def test_failure_leaves_target_untouched(self, tmp_path):
        path = str(tmp_path / "out.bin")
        with open(path, "wb") as handle:
            handle.write(b"precious")
        with pytest.raises(RuntimeError):
            with atomic_write(path) as handle:
                handle.write(b"half-written garb")
                raise RuntimeError("simulated crash mid-write")
        with open(path, "rb") as handle:
            assert handle.read() == b"precious"

    def test_failure_removes_staging_file(self, tmp_path):
        path = str(tmp_path / "out.bin")
        with pytest.raises(RuntimeError):
            with atomic_write(path) as handle:
                handle.write(b"x")
                raise RuntimeError("boom")
        assert os.listdir(tmp_path) == []

    def test_no_partial_state_visible(self, tmp_path):
        # The target name must never exist until the write completes.
        path = str(tmp_path / "out.bin")
        with atomic_write(path) as handle:
            handle.write(b"data")
            assert not os.path.exists(path)
        assert os.path.exists(path)


class TestHelpers:
    def test_tempname_is_a_sibling(self, tmp_path):
        path = str(tmp_path / "target.dat")
        temp = tempname(path)
        try:
            assert os.path.dirname(temp) == str(tmp_path)
            assert os.path.basename(temp).startswith(".target.dat.")
            assert temp.endswith(".tmp")
            assert os.path.exists(temp)
        finally:
            os.unlink(temp)

    def test_fsync_path_and_directory(self, tmp_path):
        path = tmp_path / "f"
        path.write_bytes(b"x")
        fsync_path(str(path))
        fsync_directory(str(tmp_path))    # must not raise
