"""Unit tests for the buffer manager (the paper's ReadPage)."""

from repro.storage import BufferManager, MemoryPageStore


def make_store(pages):
    store = MemoryPageStore()
    for value in pages:
        page = store.allocate()
        store.write(page, value)
    return store


def test_first_read_is_disk_access():
    manager = BufferManager(frames=4)
    side = manager.register(make_store(["a"]))
    assert manager.read(side, 0, 0) == "a"
    assert manager.stats.disk_reads == 1


def test_path_buffer_hit_is_free():
    manager = BufferManager(frames=0)
    side = manager.register(make_store(["a", "b"]))
    manager.read(side, 0, 0)
    manager.read(side, 0, 0)    # same page, same depth
    assert manager.stats.disk_reads == 1
    assert manager.stats.path_hits == 1


def test_lru_hit_after_path_replacement():
    manager = BufferManager(frames=4)
    side = manager.register(make_store(["a", "b"]))
    manager.read(side, 0, 0)
    manager.read(side, 1, 0)    # replaces path level 0
    manager.read(side, 0, 0)    # not on path, but in LRU
    assert manager.stats.disk_reads == 2
    assert manager.stats.lru_hits == 1


def test_zero_buffer_re_reads_from_disk():
    manager = BufferManager(frames=0)
    side = manager.register(make_store(["a", "b"]))
    manager.read(side, 0, 0)
    manager.read(side, 1, 0)
    manager.read(side, 0, 0)
    assert manager.stats.disk_reads == 3


def test_two_sides_have_separate_paths():
    manager = BufferManager(frames=0)
    side_a = manager.register(make_store(["a"]))
    side_b = manager.register(make_store(["b"]))
    manager.read(side_a, 0, 0)
    manager.read(side_b, 0, 0)
    manager.read(side_a, 0, 0)  # still on side A's path
    manager.read(side_b, 0, 0)
    assert manager.stats.disk_reads == 2
    assert manager.stats.path_hits == 2


def test_sides_share_lru_frames():
    manager = BufferManager(frames=1)
    side_a = manager.register(make_store(["a", "a2"]))
    side_b = manager.register(make_store(["b"]))
    manager.read(side_a, 0, 0)
    manager.read(side_b, 0, 0)   # evicts side A's page from the 1 frame
    manager.read(side_a, 1, 0)   # path replaced; LRU holds side B's page
    manager.read(side_a, 0, 0)   # miss again
    assert manager.stats.disk_reads == 4


def test_disable_path_buffer():
    manager = BufferManager(frames=0, use_path_buffer=False)
    side = manager.register(make_store(["a"]))
    manager.read(side, 0, 0)
    manager.read(side, 0, 0)
    assert manager.stats.disk_reads == 2
    assert manager.stats.path_hits == 0


def test_pinned_page_survives():
    manager = BufferManager(frames=1)
    side = manager.register(make_store(["a", "b", "c"]))
    manager.read(side, 0, 0)
    manager.pin(side, 0)
    manager.read(side, 1, 0)     # cannot evict the pinned frame
    manager.read(side, 2, 0)
    manager.read(side, 0, 0)     # pinned page still resident
    assert manager.stats.lru_hits == 1
    manager.unpin(side, 0)
    assert manager.stats.pin_events == 1


def test_for_buffer_size_constructor():
    manager = BufferManager.for_buffer_size(32, 4096)
    assert manager.lru.frames == 8


def test_reset():
    manager = BufferManager(frames=2)
    side = manager.register(make_store(["a"]))
    manager.read(side, 0, 0)
    manager.reset()
    assert manager.stats.disk_reads == 0
    manager.read(side, 0, 0)
    assert manager.stats.disk_reads == 1


def test_eviction_counted():
    manager = BufferManager(frames=1)
    side = manager.register(make_store(["a", "b"]))
    manager.read(side, 0, 0)
    manager.read(side, 1, 0)
    assert manager.stats.evictions == 1

# ----------------------------------------------------------------------
# Retry-with-backoff on the physical read path
# ----------------------------------------------------------------------

import pytest

from repro.storage import (CorruptPageError, FaultInjectingPageStore,
                           FaultPlan, TransientIOError)


def faulty_store(pages, **plan_kwargs):
    return FaultInjectingPageStore(make_store(pages),
                                   FaultPlan(**plan_kwargs))


def test_retry_recovers_from_capped_transients():
    manager = BufferManager(frames=4, max_retries=2)
    store = faulty_store(["a"], seed=1, read_transient_p=1.0,
                         max_transients_per_page=2)
    side = manager.register(store)
    assert manager.read(side, 0, 0) == "a"
    assert manager.stats.disk_reads == 1       # one counted access
    assert manager.stats.read_retries == 2     # two transients absorbed
    assert store.stats.transient_read_faults == 2


def test_backoff_ticks_double_per_attempt():
    manager = BufferManager(frames=4, max_retries=3, backoff_base=2)
    store = faulty_store(["a"], seed=1, read_transient_p=1.0,
                         max_transients_per_page=3)
    side = manager.register(store)
    manager.read(side, 0, 0)
    # attempts 0, 1, 2 fault: 2 + 4 + 8 simulated ticks
    assert manager.stats.read_retries == 3
    assert manager.stats.backoff_ticks == 14


def test_retry_exhaustion_raises():
    manager = BufferManager(frames=4, max_retries=2)
    store = faulty_store(["a"], seed=1, read_transient_p=1.0,
                         max_transients_per_page=None)
    side = manager.register(store)
    with pytest.raises(TransientIOError):
        manager.read(side, 0, 0)
    assert manager.stats.read_retries == 2


def test_zero_retries_raise_immediately():
    manager = BufferManager(frames=4)    # max_retries defaults to 0
    store = faulty_store(["a"], seed=1, read_transient_p=1.0,
                         max_transients_per_page=None)
    side = manager.register(store)
    with pytest.raises(TransientIOError):
        manager.read(side, 0, 0)
    assert manager.stats.read_retries == 0
    assert manager.stats.backoff_ticks == 0


def test_corruption_escalates_without_retry():
    class CorruptStore(MemoryPageStore):
        def __init__(self):
            super().__init__()
            self.attempts = 0

        def read_faulty(self, page_id):
            self.attempts += 1
            raise CorruptPageError(f"page {page_id} damaged")

    manager = BufferManager(frames=4, max_retries=5)
    store = CorruptStore()
    store.write(store.allocate(), "a")
    side = manager.register(store)
    with pytest.raises(CorruptPageError):
        manager.read(side, 0, 0)
    assert store.attempts == 1
    assert manager.stats.read_retries == 0


def test_buffer_hits_never_touch_the_faulty_path():
    manager = BufferManager(frames=4, max_retries=2)
    store = faulty_store(["a"], seed=1, read_transient_p=1.0,
                         max_transients_per_page=2)
    side = manager.register(store)
    manager.read(side, 0, 0)                   # physical, retried
    before = store.stats.snapshot()
    assert manager.read(side, 0, 0) == "a"     # path-buffer hit
    assert store.stats == before               # no further faults drawn
    assert manager.stats.disk_reads == 1


def test_constructor_validation():
    with pytest.raises(ValueError):
        BufferManager(frames=1, max_retries=-1)
    with pytest.raises(ValueError):
        BufferManager(frames=1, backoff_base=0)
