"""Unit tests for the Rect value type."""

import math

import pytest

from repro.geometry import ComparisonCounter, Rect, intersect_count
from repro.geometry.rect import mbr_of_tuples


class TestConstruction:
    def test_basic_bounds(self):
        r = Rect(1, 2, 3, 4)
        assert (r.xl, r.yl, r.xu, r.yu) == (1.0, 2.0, 3.0, 4.0)

    def test_degenerate_point_allowed(self):
        r = Rect.point(5, 5)
        assert r.area() == 0.0
        assert r.width == 0.0 and r.height == 0.0

    def test_degenerate_line_allowed(self):
        r = Rect(0, 3, 10, 3)
        assert r.area() == 0.0
        assert r.margin() == 10.0

    def test_inverted_x_rejected(self):
        with pytest.raises(ValueError):
            Rect(3, 0, 1, 1)

    def test_inverted_y_rejected(self):
        with pytest.raises(ValueError):
            Rect(0, 3, 1, 1)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            Rect(0, 0, math.nan, 1)

    def test_infinity_rejected(self):
        with pytest.raises(ValueError):
            Rect(0, 0, math.inf, 1)

    def test_immutable(self):
        r = Rect(0, 0, 1, 1)
        with pytest.raises(AttributeError):
            r.xl = 5.0

    def test_from_points(self):
        r = Rect.from_points([(3, 1), (0, 4), (2, 2)])
        assert r == Rect(0, 1, 3, 4)

    def test_from_points_empty_rejected(self):
        with pytest.raises(ValueError):
            Rect.from_points([])

    def test_mbr_of(self):
        r = Rect.mbr_of([Rect(0, 0, 1, 1), Rect(2, -1, 3, 0.5)])
        assert r == Rect(0, -1, 3, 1)

    def test_mbr_of_empty_rejected(self):
        with pytest.raises(ValueError):
            Rect.mbr_of([])

    def test_mbr_of_tuples(self):
        r = mbr_of_tuples([(0, 0, 1, 1), (2, 2, 3, 3)])
        assert r == Rect(0, 0, 3, 3)

    def test_mbr_of_tuples_empty_rejected(self):
        with pytest.raises(ValueError):
            mbr_of_tuples([])


class TestMetrics:
    def test_area(self):
        assert Rect(0, 0, 4, 3).area() == 12.0

    def test_margin_is_half_perimeter(self):
        assert Rect(0, 0, 4, 3).margin() == 7.0

    def test_center(self):
        assert Rect(0, 0, 4, 2).center() == (2.0, 1.0)

    def test_enlargement_disjoint(self):
        base = Rect(0, 0, 2, 2)
        assert base.enlargement(Rect(4, 0, 6, 2)) == 12.0 - 4.0

    def test_enlargement_contained_is_zero(self):
        base = Rect(0, 0, 10, 10)
        assert base.enlargement(Rect(2, 2, 3, 3)) == 0.0


class TestPredicates:
    def test_intersects_overlap(self):
        assert Rect(0, 0, 2, 2).intersects(Rect(1, 1, 3, 3))

    def test_intersects_boundary_touch_counts(self):
        assert Rect(0, 0, 2, 2).intersects(Rect(2, 0, 4, 2))
        assert Rect(0, 0, 2, 2).intersects(Rect(0, 2, 2, 4))

    def test_intersects_corner_touch_counts(self):
        assert Rect(0, 0, 2, 2).intersects(Rect(2, 2, 4, 4))

    def test_disjoint(self):
        assert not Rect(0, 0, 1, 1).intersects(Rect(2, 2, 3, 3))
        assert not Rect(0, 0, 1, 1).intersects(Rect(0, 2, 1, 3))

    def test_contains(self):
        assert Rect(0, 0, 10, 10).contains(Rect(1, 1, 2, 2))
        assert Rect(0, 0, 10, 10).contains(Rect(0, 0, 10, 10))
        assert not Rect(1, 1, 2, 2).contains(Rect(0, 0, 10, 10))

    def test_within(self):
        assert Rect(1, 1, 2, 2).within(Rect(0, 0, 10, 10))

    def test_contains_point(self):
        r = Rect(0, 0, 2, 2)
        assert r.contains_point(1, 1)
        assert r.contains_point(0, 0)
        assert not r.contains_point(3, 1)


class TestCombinations:
    def test_intersection(self):
        r = Rect(0, 0, 4, 4).intersection(Rect(2, 2, 6, 6))
        assert r == Rect(2, 2, 4, 4)

    def test_intersection_disjoint_is_none(self):
        assert Rect(0, 0, 1, 1).intersection(Rect(5, 5, 6, 6)) is None

    def test_intersection_touch_is_degenerate(self):
        r = Rect(0, 0, 2, 2).intersection(Rect(2, 0, 4, 2))
        assert r == Rect(2, 0, 2, 2)
        assert r.area() == 0.0

    def test_union(self):
        assert Rect(0, 0, 1, 1).union(Rect(3, 3, 4, 4)) == Rect(0, 0, 4, 4)

    def test_intersection_area(self):
        assert Rect(0, 0, 4, 4).intersection_area(Rect(2, 2, 6, 6)) == 4.0
        assert Rect(0, 0, 1, 1).intersection_area(Rect(5, 5, 6, 6)) == 0.0
        assert Rect(0, 0, 2, 2).intersection_area(Rect(2, 0, 4, 2)) == 0.0


class TestCountedIntersection:
    def test_hit_costs_four(self):
        c = ComparisonCounter()
        assert intersect_count(Rect(0, 0, 2, 2), Rect(1, 1, 3, 3), c)
        assert c.join == 4

    def test_x_low_miss_costs_one(self):
        c = ComparisonCounter()
        # a.xl > b.xu fails first.
        assert not intersect_count(Rect(5, 0, 6, 1), Rect(0, 0, 1, 1), c)
        assert c.join == 1

    def test_x_high_miss_costs_two(self):
        c = ComparisonCounter()
        # b.xl > a.xu fails second.
        assert not intersect_count(Rect(0, 0, 1, 1), Rect(5, 0, 6, 1), c)
        assert c.join == 2

    def test_y_low_miss_costs_three(self):
        c = ComparisonCounter()
        assert not intersect_count(Rect(0, 5, 1, 6), Rect(0, 0, 1, 1), c)
        assert c.join == 3

    def test_y_high_miss_costs_four(self):
        c = ComparisonCounter()
        assert not intersect_count(Rect(0, 0, 1, 1), Rect(0, 5, 1, 6), c)
        assert c.join == 4

    def test_matches_uncounted_predicate(self):
        import random
        rng = random.Random(5)
        c = ComparisonCounter()
        for _ in range(500):
            a = Rect(rng.random(), rng.random(),
                     rng.random() + 1, rng.random() + 1)
            b = Rect(rng.random(), rng.random(),
                     rng.random() + 1, rng.random() + 1)
            assert intersect_count(a, b, c) == a.intersects(b)


class TestValueSemantics:
    def test_equality_and_hash(self):
        assert Rect(0, 0, 1, 1) == Rect(0, 0, 1, 1)
        assert hash(Rect(0, 0, 1, 1)) == hash(Rect(0, 0, 1, 1))
        assert Rect(0, 0, 1, 1) != Rect(0, 0, 1, 2)

    def test_not_equal_other_type(self):
        assert Rect(0, 0, 1, 1) != (0, 0, 1, 1)

    def test_iteration_and_tuple(self):
        r = Rect(1, 2, 3, 4)
        assert tuple(r) == (1, 2, 3, 4)
        assert r.as_tuple() == (1, 2, 3, 4)

    def test_pickle_roundtrip(self):
        import pickle
        r = Rect(1, 2, 3, 4)
        assert pickle.loads(pickle.dumps(r)) == r
