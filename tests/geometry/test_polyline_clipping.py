"""Tests for segment/polyline clipping against convex polygons."""

import pytest

from repro.geometry import Polygon, Polyline
from repro.geometry.clipping import clip_polyline, clip_segment

SQUARE = Polygon([(0, 0), (4, 0), (4, 4), (0, 4)])


class TestClipSegment:
    def test_fully_inside_unchanged(self):
        assert clip_segment((1, 1), (3, 3), SQUARE) == ((1, 1), (3, 3))

    def test_fully_outside_is_none(self):
        assert clip_segment((10, 10), (12, 12), SQUARE) is None
        assert clip_segment((-2, 2), (-1, 2), SQUARE) is None

    def test_crossing_clipped_both_ends(self):
        start, end = clip_segment((-2, 2), (6, 2), SQUARE)
        assert start == pytest.approx((0.0, 2.0))
        assert end == pytest.approx((4.0, 2.0))

    def test_one_end_inside(self):
        start, end = clip_segment((2, 2), (8, 2), SQUARE)
        assert start == (2, 2)
        assert end == pytest.approx((4.0, 2.0))

    def test_diagonal_through_corner_region(self):
        start, end = clip_segment((-1, -1), (5, 5), SQUARE)
        assert start == pytest.approx((0.0, 0.0))
        assert end == pytest.approx((4.0, 4.0))

    def test_parallel_outside_edge(self):
        assert clip_segment((-1, 5), (5, 5), SQUARE) is None

    def test_parallel_on_edge_kept(self):
        clipped = clip_segment((1, 4), (3, 4), SQUARE)
        assert clipped == ((1, 4), (3, 4))

    def test_misses_corner(self):
        # Passes near the corner but outside.
        assert clip_segment((3.5, 5.5), (5.5, 3.5), SQUARE) is None

    def test_clockwise_clip_ring_handled(self):
        cw = Polygon([(0, 0), (0, 4), (4, 4), (4, 0)])
        assert cw.signed_area() < 0
        assert clip_segment((1, 1), (3, 3), cw) == ((1, 1), (3, 3))

    def test_concave_clip_rejected(self):
        arrow = Polygon([(0, 0), (4, 0), (2, 1), (2, 4)])
        with pytest.raises(ValueError):
            clip_segment((0, 0), (1, 1), arrow)

    def test_triangle_clip(self):
        triangle = Polygon([(0, 0), (4, 0), (2, 4)])
        start, end = clip_segment((-2, 1), (6, 1), triangle)
        assert start == pytest.approx((0.5, 1.0))
        assert end == pytest.approx((3.5, 1.0))


class TestClipPolyline:
    def test_chain_inside(self):
        line = Polyline([(1, 1), (2, 2), (3, 1)])
        pieces = clip_polyline(line, SQUARE)
        assert len(pieces) == 1
        assert pieces[0].vertices == ((1, 1), (2, 2), (3, 1))

    def test_chain_crossing_out_and_back(self):
        # Leaves the square through the right edge and re-enters.
        line = Polyline([(1, 1), (6, 1), (6, 3), (1, 3)])
        pieces = clip_polyline(line, SQUARE)
        assert len(pieces) == 2
        first, second = pieces
        assert first.vertices[0] == (1, 1)
        assert first.vertices[-1] == pytest.approx((4.0, 1.0))
        assert second.vertices[0] == pytest.approx((4.0, 3.0))
        assert second.vertices[-1] == (1, 3)

    def test_chain_fully_outside(self):
        line = Polyline([(10, 10), (12, 10), (12, 12)])
        assert clip_polyline(line, SQUARE) == []

    def test_length_preserved_when_inside(self):
        line = Polyline([(0.5, 0.5), (3.5, 0.5), (3.5, 3.5)])
        pieces = clip_polyline(line, SQUARE)
        assert len(pieces) == 1
        assert pieces[0].length() == pytest.approx(line.length())

    def test_clipped_length_shorter(self):
        line = Polyline([(-2, 2), (6, 2)])
        pieces = clip_polyline(line, SQUARE)
        assert len(pieces) == 1
        assert pieces[0].length() == pytest.approx(4.0)
