"""Unit tests for polygons."""

import pytest

from repro.geometry import Polygon, Rect, regular_polygon


UNIT_SQUARE = Polygon([(0, 0), (1, 0), (1, 1), (0, 1)])


class TestConstruction:
    def test_three_vertices_minimum(self):
        with pytest.raises(ValueError):
            Polygon([(0, 0), (1, 1)])

    def test_closing_vertex_dropped(self):
        p = Polygon([(0, 0), (1, 0), (1, 1), (0, 0)])
        assert len(p) == 3

    def test_closed_triangle_still_needs_three_distinct(self):
        with pytest.raises(ValueError):
            Polygon([(0, 0), (1, 0), (0, 0)])

    def test_regular_polygon(self):
        p = regular_polygon(0, 0, 1.0, sides=6)
        assert len(p) == 6
        assert p.area() == pytest.approx(2.598, abs=1e-3)

    def test_regular_polygon_too_few_sides(self):
        with pytest.raises(ValueError):
            regular_polygon(0, 0, 1.0, sides=2)


class TestMetrics:
    def test_area_square(self):
        assert UNIT_SQUARE.area() == 1.0

    def test_signed_area_ccw_positive(self):
        assert UNIT_SQUARE.signed_area() == 0.5 * 2  # 1.0, CCW ring

    def test_signed_area_cw_negative(self):
        p = Polygon([(0, 0), (0, 1), (1, 1), (1, 0)])
        assert p.signed_area() == -1.0

    def test_mbr(self):
        assert UNIT_SQUARE.mbr() == Rect(0, 0, 1, 1)

    def test_edges_include_closing_edge(self):
        assert len(list(UNIT_SQUARE.edges())) == 4


class TestContainsPoint:
    def test_interior(self):
        assert UNIT_SQUARE.contains_point(0.5, 0.5)

    def test_exterior(self):
        assert not UNIT_SQUARE.contains_point(2.0, 0.5)

    def test_boundary_counts_as_inside(self):
        assert UNIT_SQUARE.contains_point(0.0, 0.5)
        assert UNIT_SQUARE.contains_point(0.0, 0.0)

    def test_concave_polygon(self):
        # A "C" shape: point in the notch is outside.
        c_shape = Polygon([(0, 0), (3, 0), (3, 1), (1, 1), (1, 2),
                           (3, 2), (3, 3), (0, 3)])
        assert c_shape.contains_point(0.5, 1.5)
        assert not c_shape.contains_point(2.0, 1.5)


class TestIntersects:
    def test_overlapping_squares(self):
        other = Polygon([(0.5, 0.5), (1.5, 0.5), (1.5, 1.5), (0.5, 1.5)])
        assert UNIT_SQUARE.intersects(other)

    def test_nested_polygon_detected(self):
        inner = Polygon([(0.25, 0.25), (0.75, 0.25), (0.5, 0.75)])
        assert UNIT_SQUARE.intersects(inner)
        assert inner.intersects(UNIT_SQUARE)

    def test_disjoint(self):
        far = Polygon([(5, 5), (6, 5), (6, 6)])
        assert not UNIT_SQUARE.intersects(far)

    def test_mbr_overlap_but_disjoint_shapes(self):
        # Two triangles in opposite corners of a shared bounding box.
        a = Polygon([(0, 0), (1, 0), (0, 1)])
        b = Polygon([(3.2, 3.2), (4, 3.99), (4, 4), (3.99, 4)])
        big = Polygon([(0, 0), (4, 0), (0, 4)])
        assert not big.intersects(b)
        assert big.mbr().intersects(b.mbr())
        assert big.intersects(a)


def test_equality_hash_pickle():
    import pickle
    a = Polygon([(0, 0), (1, 0), (0, 1)])
    b = Polygon([(0, 0), (1, 0), (0, 1)])
    assert a == b and hash(a) == hash(b)
    assert a != UNIT_SQUARE
    assert a != 3
    assert pickle.loads(pickle.dumps(a)) == a
