"""Property-based tests for rectangle algebra (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import ComparisonCounter, Rect, intersect_count

coords = st.floats(min_value=-1e6, max_value=1e6,
                   allow_nan=False, allow_infinity=False)


@st.composite
def rects(draw):
    x1 = draw(coords)
    x2 = draw(coords)
    y1 = draw(coords)
    y2 = draw(coords)
    return Rect(min(x1, x2), min(y1, y2), max(x1, x2), max(y1, y2))


@given(rects(), rects())
def test_intersection_symmetric(a, b):
    assert a.intersects(b) == b.intersects(a)


@given(rects(), rects())
def test_counted_test_agrees_with_predicate(a, b):
    c = ComparisonCounter()
    assert intersect_count(a, b, c) == a.intersects(b)
    assert 1 <= c.join <= 4


@given(rects(), rects())
def test_intersection_consistent_with_predicate(a, b):
    common = a.intersection(b)
    assert (common is not None) == a.intersects(b)
    if common is not None:
        assert a.contains(common)
        assert b.contains(common)


@given(rects(), rects())
def test_union_covers_both(a, b):
    u = a.union(b)
    assert u.contains(a) and u.contains(b)


@given(rects(), rects())
def test_union_is_tight(a, b):
    u = a.union(b)
    assert u.xl == min(a.xl, b.xl)
    assert u.yl == min(a.yl, b.yl)
    assert u.xu == max(a.xu, b.xu)
    assert u.yu == max(a.yu, b.yu)


@given(rects(), rects())
def test_enlargement_non_negative(a, b):
    assert a.enlargement(b) >= 0.0


@given(rects(), rects())
def test_intersection_area_matches_intersection(a, b):
    area = a.intersection_area(b)
    common = a.intersection(b)
    if common is None:
        assert area == 0.0
    else:
        assert area == common.area()


@given(rects())
def test_self_relations(a):
    assert a.intersects(a)
    assert a.contains(a)
    assert a.union(a) == a
    assert a.intersection(a) == a
    assert a.enlargement(a) == 0.0


@given(rects(), rects(), rects())
def test_containment_transitive(a, b, c):
    if a.contains(b) and b.contains(c):
        assert a.contains(c)


@given(st.lists(rects(), min_size=1, max_size=20))
def test_mbr_of_covers_all(rect_list):
    mbr = Rect.mbr_of(rect_list)
    for r in rect_list:
        assert mbr.contains(r)
