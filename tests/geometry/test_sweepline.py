"""Unit tests for the red/blue segment sweep."""

import random

from repro.geometry import (Segment, count_intersecting_pairs,
                            intersecting_segment_pairs)


def brute_force(red, blue):
    return {(i, j) for i, a in enumerate(red) for j, b in enumerate(blue)
            if a.intersects(b)}


def random_segments(n, seed, span=100.0, length=10.0):
    rng = random.Random(seed)
    out = []
    for _ in range(n):
        x = rng.random() * span
        y = rng.random() * span
        out.append(Segment(x, y, x + (rng.random() - 0.5) * length,
                           y + (rng.random() - 0.5) * length))
    return out


def test_simple_crossing():
    red = [Segment(0, 0, 2, 2)]
    blue = [Segment(0, 2, 2, 0)]
    assert set(intersecting_segment_pairs(red, blue)) == {(0, 0)}


def test_disjoint_sets():
    red = [Segment(0, 0, 1, 0)]
    blue = [Segment(5, 5, 6, 5)]
    assert list(intersecting_segment_pairs(red, blue)) == []


def test_x_overlap_but_y_disjoint():
    red = [Segment(0, 0, 10, 0)]
    blue = [Segment(0, 5, 10, 5)]
    assert list(intersecting_segment_pairs(red, blue)) == []


def test_matches_brute_force_random():
    red = random_segments(120, seed=1)
    blue = random_segments(120, seed=2)
    expected = brute_force(red, blue)
    actual = set(intersecting_segment_pairs(red, blue))
    assert actual == expected


def test_matches_brute_force_dense():
    red = random_segments(80, seed=3, span=20.0, length=15.0)
    blue = random_segments(80, seed=4, span=20.0, length=15.0)
    assert set(intersecting_segment_pairs(red, blue)) == \
        brute_force(red, blue)


def test_count_helper():
    red = [Segment(0, 0, 2, 2), Segment(5, 5, 6, 6)]
    blue = [Segment(0, 2, 2, 0)]
    assert count_intersecting_pairs(red, blue) == 1


def test_empty_inputs():
    assert list(intersecting_segment_pairs([], [])) == []
    assert list(intersecting_segment_pairs([Segment(0, 0, 1, 1)], [])) == []
