"""Property-based tests for the clipping routines (hypothesis)."""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.geometry import Polygon, Polyline, clip_polygon
from repro.geometry.clipping import clip_polyline, clip_segment

coords = st.floats(min_value=-100.0, max_value=100.0,
                   allow_nan=False, allow_infinity=False)


@st.composite
def convex_polygons(draw):
    """Random convex polygon: points on a randomly scaled ellipse."""
    cx = draw(coords)
    cy = draw(coords)
    rx = draw(st.floats(min_value=1.0, max_value=50.0))
    ry = draw(st.floats(min_value=1.0, max_value=50.0))
    sides = draw(st.integers(min_value=3, max_value=9))
    phase = draw(st.floats(min_value=0.0, max_value=2.0 * math.pi))
    return Polygon([
        (cx + rx * math.cos(phase + 2 * math.pi * k / sides),
         cy + ry * math.sin(phase + 2 * math.pi * k / sides))
        for k in range(sides)
    ])


points = st.tuples(coords, coords)


@settings(max_examples=80, deadline=None)
@given(points, points, convex_polygons())
def test_clip_segment_endpoints_lie_on_segment(p0, p1, clip):
    assume(p0 != p1)
    clipped = clip_segment(p0, p1, clip)
    if clipped is None:
        return
    (ax, ay), (bx, by) = clipped
    # Clipped endpoints stay within the original segment's bounding box
    # (they are p0 + t(p1-p0) with t in [0, 1]).
    for x, y in clipped:
        assert min(p0[0], p1[0]) - 1e-6 <= x <= max(p0[0], p1[0]) + 1e-6
        assert min(p0[1], p1[1]) - 1e-6 <= y <= max(p0[1], p1[1]) + 1e-6
    # And the clipped piece is no longer than the original.
    original = math.hypot(p1[0] - p0[0], p1[1] - p0[1])
    piece = math.hypot(bx - ax, by - ay)
    assert piece <= original + 1e-6


@settings(max_examples=60, deadline=None)
@given(points, points, convex_polygons())
def test_clip_segment_midpoint_inside_clip(p0, p1, clip):
    assume(p0 != p1)
    clipped = clip_segment(p0, p1, clip)
    if clipped is None or clipped[0] == clipped[1]:
        return
    (ax, ay), (bx, by) = clipped
    mx, my = (ax + bx) / 2.0, (ay + by) / 2.0
    # The midpoint of the clipped piece must lie in (or on) the clip
    # polygon; tiny float tolerance through the MBR.
    mbr = clip.mbr()
    assert mbr.xl - 1e-6 <= mx <= mbr.xu + 1e-6
    assert mbr.yl - 1e-6 <= my <= mbr.yu + 1e-6


@settings(max_examples=40, deadline=None)
@given(st.lists(points, min_size=2, max_size=8, unique=True),
       convex_polygons())
def test_clip_polyline_total_length_bounded(vertices, clip):
    line = Polyline(vertices)
    pieces = clip_polyline(line, clip)
    total = sum(piece.length() for piece in pieces)
    assert total <= line.length() + 1e-6


@settings(max_examples=40, deadline=None)
@given(convex_polygons(), convex_polygons())
def test_clip_polygon_area_bounded(subject, clip):
    result = clip_polygon(subject, clip)
    if result is None:
        return
    assert result.area() <= subject.area() + 1e-6
    assert result.area() <= clip.area() + 1e-6
    # The result lies inside both MBRs.
    assert subject.mbr().intersection(clip.mbr()) is not None
