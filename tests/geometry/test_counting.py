"""Unit tests for the comparison counter."""

from repro.geometry import ComparisonCounter


def test_initial_state():
    c = ComparisonCounter()
    assert c.join == 0 and c.sort == 0 and c.total == 0


def test_add_methods():
    c = ComparisonCounter()
    c.add_join(3)
    c.add_sort(5)
    assert c.join == 3 and c.sort == 5 and c.total == 8


def test_direct_increment():
    c = ComparisonCounter()
    c.join += 7
    assert c.total == 7


def test_reset():
    c = ComparisonCounter(4, 2)
    c.reset()
    assert c.total == 0


def test_snapshot_is_independent():
    c = ComparisonCounter(1, 1)
    snap = c.snapshot()
    c.join += 10
    assert snap.join == 1 and c.join == 11


def test_iadd_merges():
    a = ComparisonCounter(1, 2)
    b = ComparisonCounter(10, 20)
    a += b
    assert a.join == 11 and a.sort == 22


def test_equality():
    assert ComparisonCounter(1, 2) == ComparisonCounter(1, 2)
    assert ComparisonCounter(1, 2) != ComparisonCounter(2, 1)
    assert ComparisonCounter() != "not a counter"
