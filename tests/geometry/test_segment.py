"""Unit tests for segments and segment intersection."""

import pytest

from repro.geometry import Rect, Segment, segment_intersection_point
from repro.geometry.segment import orientation, segments_intersect


class TestOrientation:
    def test_counter_clockwise(self):
        assert orientation(0, 0, 1, 0, 1, 1) == 1

    def test_clockwise(self):
        assert orientation(0, 0, 1, 0, 1, -1) == -1

    def test_collinear(self):
        assert orientation(0, 0, 1, 1, 2, 2) == 0


class TestSegmentsIntersect:
    def test_proper_crossing(self):
        assert segments_intersect((0, 0), (2, 2), (0, 2), (2, 0))

    def test_disjoint(self):
        assert not segments_intersect((0, 0), (1, 0), (0, 1), (1, 1))

    def test_shared_endpoint(self):
        assert segments_intersect((0, 0), (1, 1), (1, 1), (2, 0))

    def test_t_junction(self):
        assert segments_intersect((0, 0), (2, 0), (1, -1), (1, 0))

    def test_collinear_overlap(self):
        assert segments_intersect((0, 0), (2, 0), (1, 0), (3, 0))

    def test_collinear_disjoint(self):
        assert not segments_intersect((0, 0), (1, 0), (2, 0), (3, 0))

    def test_parallel_non_collinear(self):
        assert not segments_intersect((0, 0), (2, 0), (0, 1), (2, 1))


class TestIntersectionPoint:
    def test_proper_crossing_point(self):
        p = segment_intersection_point((0, 0), (2, 2), (0, 2), (2, 0))
        assert p == (1.0, 1.0)

    def test_disjoint_gives_none(self):
        assert segment_intersection_point(
            (0, 0), (1, 1), (5, 5), (6, 6)) is None

    def test_touching_endpoint(self):
        p = segment_intersection_point((0, 0), (1, 1), (1, 1), (2, 0))
        assert p == (1.0, 1.0)

    def test_collinear_overlap_gives_none(self):
        assert segment_intersection_point(
            (0, 0), (2, 0), (1, 0), (3, 0)) is None

    def test_lines_cross_but_segments_do_not(self):
        assert segment_intersection_point(
            (0, 0), (1, 1), (0, 10), (10, 0)) is None


class TestSegmentClass:
    def test_mbr(self):
        assert Segment(3, 1, 0, 4).mbr() == Rect(0, 1, 3, 4)

    def test_intersects_method(self):
        assert Segment(0, 0, 2, 2).intersects(Segment(0, 2, 2, 0))
        assert not Segment(0, 0, 1, 0).intersects(Segment(0, 1, 1, 1))

    def test_immutable(self):
        s = Segment(0, 0, 1, 1)
        with pytest.raises(AttributeError):
            s.x1 = 9

    def test_equality_and_hash(self):
        assert Segment(0, 0, 1, 1) == Segment(0, 0, 1, 1)
        assert hash(Segment(0, 0, 1, 1)) == hash(Segment(0, 0, 1, 1))
        assert Segment(0, 0, 1, 1) != "seg"

    def test_endpoints(self):
        assert Segment(0, 1, 2, 3).endpoints() == ((0, 1), (2, 3))

    def test_pickle(self):
        import pickle
        s = Segment(0, 1, 2, 3)
        assert pickle.loads(pickle.dumps(s)) == s
