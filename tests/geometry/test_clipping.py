"""Unit tests for Sutherland-Hodgman clipping."""

import pytest

from repro.geometry import Polygon, clip_polygon, is_convex


SQUARE = Polygon([(0, 0), (4, 0), (4, 4), (0, 4)])


class TestIsConvex:
    def test_square_is_convex(self):
        assert is_convex(SQUARE)

    def test_triangle_is_convex(self):
        assert is_convex(Polygon([(0, 0), (2, 0), (1, 2)]))

    def test_concave_detected(self):
        arrow = Polygon([(0, 0), (4, 0), (2, 1), (2, 4)])
        assert not is_convex(arrow)

    def test_collinear_vertices_still_convex(self):
        p = Polygon([(0, 0), (2, 0), (4, 0), (4, 4), (0, 4)])
        assert is_convex(p)


class TestClip:
    def test_overlapping_squares(self):
        other = Polygon([(2, 2), (6, 2), (6, 6), (2, 6)])
        result = clip_polygon(SQUARE, other)
        assert result is not None
        assert result.area() == pytest.approx(4.0)
        assert result.mbr().as_tuple() == (2.0, 2.0, 4.0, 4.0)

    def test_contained_subject_unchanged(self):
        inner = Polygon([(1, 1), (2, 1), (2, 2), (1, 2)])
        result = clip_polygon(inner, SQUARE)
        assert result is not None
        assert result.area() == pytest.approx(1.0)

    def test_disjoint_gives_none(self):
        far = Polygon([(10, 10), (12, 10), (12, 12), (10, 12)])
        assert clip_polygon(SQUARE, far) is None

    def test_edge_touch_gives_none(self):
        neighbour = Polygon([(4, 0), (8, 0), (8, 4), (4, 4)])
        assert clip_polygon(SQUARE, neighbour) is None

    def test_concave_clip_rejected(self):
        arrow = Polygon([(0, 0), (4, 0), (2, 1), (2, 4)])
        with pytest.raises(ValueError):
            clip_polygon(SQUARE, arrow)

    def test_clockwise_clip_ring_handled(self):
        cw = Polygon([(2, 2), (2, 6), (6, 6), (6, 2)])
        assert cw.signed_area() < 0
        result = clip_polygon(SQUARE, cw)
        assert result is not None
        assert result.area() == pytest.approx(4.0)

    def test_concave_subject_against_convex_clip(self):
        # The subject may be concave; only the clip must be convex.
        c_shape = Polygon([(0, 0), (3, 0), (3, 1), (1, 1), (1, 2),
                           (3, 2), (3, 3), (0, 3)])
        window = Polygon([(0, 0), (3, 0), (3, 3), (0, 3)])
        result = clip_polygon(c_shape, window)
        assert result is not None
        assert result.area() == pytest.approx(c_shape.area())

    def test_triangle_against_square(self):
        tri = Polygon([(2, -2), (6, 2), (2, 6)])
        result = clip_polygon(tri, SQUARE)
        assert result is not None
        assert 0.0 < result.area() < tri.area()
