"""Unit tests for Point."""

import math
import pickle

import pytest

from repro.geometry import Point


def test_construction():
    p = Point(1, 2)
    assert p.x == 1.0 and p.y == 2.0


def test_nonfinite_rejected():
    with pytest.raises(ValueError):
        Point(math.nan, 0)
    with pytest.raises(ValueError):
        Point(0, math.inf)


def test_immutable():
    p = Point(0, 0)
    with pytest.raises(AttributeError):
        p.x = 5


def test_distance():
    assert Point(0, 0).distance_to(Point(3, 4)) == 5.0


def test_value_semantics():
    assert Point(1, 2) == Point(1, 2)
    assert hash(Point(1, 2)) == hash(Point(1, 2))
    assert Point(1, 2) != Point(2, 1)
    assert Point(1, 2) != (1, 2)
    assert tuple(Point(1, 2)) == (1, 2)
    assert Point(1, 2).as_tuple() == (1, 2)


def test_pickle():
    p = Point(1.5, -2.5)
    assert pickle.loads(pickle.dumps(p)) == p
