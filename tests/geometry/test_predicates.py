"""Unit tests for spatial predicates."""

from repro.geometry import Rect, SpatialPredicate


def test_intersects():
    p = SpatialPredicate.INTERSECTS
    assert p.evaluate(Rect(0, 0, 2, 2), Rect(1, 1, 3, 3))
    assert not p.evaluate(Rect(0, 0, 1, 1), Rect(5, 5, 6, 6))


def test_contains():
    p = SpatialPredicate.CONTAINS
    assert p.evaluate(Rect(0, 0, 10, 10), Rect(1, 1, 2, 2))
    assert not p.evaluate(Rect(1, 1, 2, 2), Rect(0, 0, 10, 10))


def test_within():
    p = SpatialPredicate.WITHIN
    assert p.evaluate(Rect(1, 1, 2, 2), Rect(0, 0, 10, 10))
    assert not p.evaluate(Rect(0, 0, 10, 10), Rect(1, 1, 2, 2))


def test_all_predicates_imply_intersection():
    # The directory-level pruning soundness assumption.
    for predicate in SpatialPredicate:
        assert predicate.prunes_with_intersection()


def test_containment_implies_intersection_on_samples():
    import random
    rng = random.Random(3)
    for _ in range(200):
        a = Rect(rng.random(), rng.random(),
                 rng.random() + 1, rng.random() + 1)
        b = Rect(rng.random(), rng.random(),
                 rng.random() + 1, rng.random() + 1)
        for predicate in SpatialPredicate:
            if predicate.evaluate(a, b):
                assert a.intersects(b)
