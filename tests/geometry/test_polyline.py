"""Unit tests for polylines."""

import pytest

from repro.geometry import Polyline, Rect, split_into_records


class TestConstruction:
    def test_two_vertices_minimum(self):
        with pytest.raises(ValueError):
            Polyline([(0, 0)])

    def test_vertices_preserved(self):
        line = Polyline([(0, 0), (1, 1), (2, 0)])
        assert line.vertices == ((0, 0), (1, 1), (2, 0))
        assert len(line) == 3

    def test_immutable(self):
        line = Polyline([(0, 0), (1, 1)])
        with pytest.raises(AttributeError):
            line._vertices = ()


class TestGeometry:
    def test_mbr(self):
        line = Polyline([(0, 2), (3, 0), (1, 4)])
        assert line.mbr() == Rect(0, 0, 3, 4)

    def test_segments(self):
        line = Polyline([(0, 0), (1, 0), (1, 1)])
        segs = list(line.segments())
        assert len(segs) == 2
        assert (segs[0].x1, segs[0].y1, segs[0].x2, segs[0].y2) == (0, 0, 1, 0)

    def test_length(self):
        line = Polyline([(0, 0), (3, 0), (3, 4)])
        assert line.length() == pytest.approx(7.0)


class TestIntersects:
    def test_crossing_chains(self):
        a = Polyline([(0, 1), (4, 1)])
        b = Polyline([(2, 0), (2, 2)])
        assert a.intersects(b)
        assert b.intersects(a)

    def test_mbr_overlap_but_no_crossing(self):
        # L-shapes whose MBRs overlap but segments never touch.
        a = Polyline([(0, 0), (0, 4), (1, 4)])
        b = Polyline([(0.5, 0), (0.5, 3), (1, 3)])
        assert a.mbr().intersects(b.mbr())
        assert not a.intersects(b)

    def test_disjoint_mbrs_shortcut(self):
        a = Polyline([(0, 0), (1, 1)])
        b = Polyline([(10, 10), (11, 11)])
        assert not a.intersects(b)


class TestSplitIntoRecords:
    def test_chain_splits_to_single_segments(self):
        line = Polyline([(0, 0), (1, 0), (2, 1), (3, 1)])
        records = split_into_records(line)
        assert len(records) == 3
        assert all(len(r) == 2 for r in records)
        assert records[1].vertices == ((1, 0), (2, 1))


def test_equality_hash_pickle():
    import pickle
    a = Polyline([(0, 0), (1, 1)])
    b = Polyline([(0, 0), (1, 1)])
    assert a == b
    assert hash(a) == hash(b)
    assert a != Polyline([(0, 0), (2, 2)])
    assert a != "line"
    assert pickle.loads(pickle.dumps(a)) == a
