"""Shared fixtures for the test suite.

Tree-building is the expensive part of most integration tests, so the
medium-size trees are session-scoped and must not be mutated
structurally by tests (joins only sort nodes, which is idempotent).
"""

from __future__ import annotations

import random

import pytest

from repro.data import clustered_rects, uniform_rects
from repro.geometry import Rect
from repro.rtree import RStarTree, RTreeParams


def make_rects(n, seed=0, world=1000.0, max_extent=10.0):
    """Simple deterministic (rect, id) records for unit tests."""
    rng = random.Random(seed)
    records = []
    for i in range(n):
        x = rng.random() * world
        y = rng.random() * world
        w = rng.random() * max_extent
        h = rng.random() * max_extent
        records.append((Rect(x, y, x + w, y + h), i))
    return records


def build_rstar(records, page_size=1024):
    tree = RStarTree(RTreeParams.from_page_size(page_size))
    for rect, ref in records:
        tree.insert(rect, ref)
    return tree


@pytest.fixture(scope="session")
def small_records():
    return make_rects(300, seed=1)


@pytest.fixture(scope="session")
def medium_records_pair():
    left = clustered_rects(2500, seed=11, clusters=8)
    right = uniform_rects(2500, seed=22)
    return left, right


@pytest.fixture(scope="session")
def medium_trees(medium_records_pair):
    left, right = medium_records_pair
    return build_rstar(left), build_rstar(right)


@pytest.fixture(scope="session")
def unbalanced_trees():
    """Two trees of different height (big R, small S)."""
    left = make_rects(6000, seed=33)
    right = make_rects(250, seed=44)
    return build_rstar(left), build_rstar(right), left, right
