"""The spatial-database facade end to end.

Creates a small GIS catalog with the :class:`repro.db.SpatialDatabase`
facade, runs filtered and refined joins, persists everything to a
directory, reopens it, and renders an SVG picture of one relation's
R*-tree.

Run with::

    python examples/spatial_database.py
"""

import os
import tempfile

from repro.data import regions, rivers_railways, streets
from repro.db import SpatialDatabase
from repro.geometry import Rect, SpatialPredicate
from repro.viz import render_tree
from repro.core import JoinSpec


def main() -> None:
    db = SpatialDatabase(page_size=2048)

    # --- Load three relations from the generators. ---
    for name, dataset in (
            ("streets", streets(4000, seed=1)),
            ("waterways", rivers_railways(4000, seed=2)),
            ("districts", regions(300, seed=3))):
        relation = db.create_relation(name)
        for oid, obj in sorted(dataset.objects.items()):
            relation.insert(obj, oid)
        print(f"relation {name!r}: {len(relation):,} objects, "
              f"tree height {relation.tree.height}")

    # --- Filter join vs refined join. ---
    coarse = db.join("streets", "waterways", spec=JoinSpec(buffer_kb=128))
    fine = db.join("streets", "waterways", refine=True,
                   spec=JoinSpec(buffer_kb=128))
    print(f"\nstreets x waterways: {len(coarse):,} MBR candidates, "
          f"{len(fine):,} exact crossings "
          f"({(1 - len(fine) / len(coarse)):.0%} false hits removed)")

    # --- Predicate join: which districts contain which streets. ---
    contained = db.join("districts", "streets",
                        spec=JoinSpec(buffer_kb=64, predicate=SpatialPredicate.CONTAINS))
    print(f"districts containing street MBRs: {len(contained):,} pairs")

    # --- Relation-level queries. ---
    districts = db.relation("districts")
    window = Rect(40_000, 40_000, 60_000, 60_000)
    print(f"districts touching the center window: "
          f"{len(districts.window(window))}")
    nearest = districts.nearest(50_000, 50_000, k=3)
    print(f"3 districts nearest to the center: "
          f"{[oid for oid, _ in nearest]}")

    # --- Persist and reopen. ---
    directory = tempfile.mkdtemp(prefix="repro-db-")
    db.save(directory)
    reopened = SpatialDatabase.open(directory)
    again = reopened.join("streets", "waterways", refine=True,
                          spec=JoinSpec(buffer_kb=128))
    assert again.pair_set() == fine.pair_set()
    files = sorted(os.listdir(directory))
    print(f"\nsaved catalog to {directory} ({len(files)} files) and "
          f"verified the refined join after reopening")

    # --- Render the district tree's MBR layers as SVG. ---
    svg_path = os.path.join(directory, "districts-tree.svg")
    canvas = render_tree(reopened.relation("districts").tree, svg_path)
    print(f"rendered {len(canvas)} rectangles to {svg_path}")


if __name__ == "__main__":
    main()
