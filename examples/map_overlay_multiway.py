"""Beyond the paper: multiway joins, containment joins, kNN.

Three extensions the paper points to (Sections 2.1 and 6), on one
scenario: streets, waterways, and administrative districts of the same
synthetic map.

1. **3-way join** — street x waterway x district triples whose MBRs
   share a common point: "which street/water crossings lie in which
   district" (the map-overlay workload of the paper's introduction).
2. **Containment join** — districts WITHIN a coarse planning zone grid.
3. **kNN** — the waterway segments nearest to a query point, best-first.

Run with::

    python examples/map_overlay_multiway.py
"""

from repro import (RStarTree, RTreeParams, nearest_neighbors,
                   multiway_spatial_join, spatial_join)
from repro.core.multiway import multiway_spatial_join as multiway
from repro.data import regions, rivers_railways, streets
from repro.geometry import SpatialPredicate
from repro.core import JoinSpec


def build(records, params):
    tree = RStarTree(params)
    for rect, ref in records:
        tree.insert(rect, ref)
    return tree


def main() -> None:
    params = RTreeParams.from_page_size(2048)
    street_map = streets(6000, seed=1)
    water_map = rivers_railways(6000, seed=2)
    districts = regions(400, seed=3, name="districts")

    street_tree = build(street_map.records, params)
    water_tree = build(water_map.records, params)
    district_tree = build(districts.records, params)
    print(f"indexed {len(street_tree):,} streets, "
          f"{len(water_tree):,} waterways, "
          f"{len(district_tree):,} districts")

    # --- 1. Three-way overlay join. ---
    result = multiway_spatial_join(
        (street_tree, water_tree, district_tree), buffer_kb=128)
    print(f"\n3-way join: {len(result):,} (street, waterway, district) "
          f"triples")
    print(f"  disk accesses: {result.stats.disk_accesses:,}, "
          f"comparisons: {result.stats.comparisons.total:,}")
    by_district: dict[int, int] = {}
    for _, _, district in result.tuples:
        by_district[district] = by_district.get(district, 0) + 1
    busiest = max(by_district, key=by_district.get)
    print(f"  busiest district: #{busiest} with "
          f"{by_district[busiest]:,} street/water candidate crossings")

    # --- 2. Containment join: districts within coarse zones. ---
    zones = regions(25, seed=4, name="zones")
    zone_tree = build(zones.records, params)
    contained = spatial_join(zone_tree, district_tree,
                             spec=JoinSpec(algorithm="sj4", buffer_kb=64, predicate=SpatialPredicate.CONTAINS))
    print(f"\ncontainment join: {len(contained):,} (zone, district) "
          f"pairs where the district MBR lies fully inside the zone MBR")

    # --- 3. kNN: waterways nearest to a depot. ---
    depot = (50_000.0, 50_000.0)
    nearest = nearest_neighbors(water_tree, *depot, k=5)
    print(f"\n5 waterway segments nearest to the depot at {depot}:")
    for ref, distance in nearest:
        print(f"  segment #{ref}: {distance:,.0f} units away")


if __name__ == "__main__":
    main()
