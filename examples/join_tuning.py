"""Comparing the five join algorithms — the paper's evaluation in
miniature.

Builds the test-A workload (streets x rivers&railways) at a small
scale, runs SJ1 through SJ5 across buffer sizes, and prints disk
accesses, comparisons and estimated execution times side by side.

Run with::

    python examples/join_tuning.py [scale]
"""

import sys

from repro.bench import build_tree, format_table
from repro.core import JoinSpec, spatial_join
from repro.costmodel import PAPER_COST_MODEL
from repro.data import load_test


def main(scale: float = 0.03) -> None:
    pair = load_test("A", scale)
    print(f"workload: {pair.r.name} ({len(pair.r):,}) x "
          f"{pair.s.name} ({len(pair.s):,}), page size 2 KByte")

    tree_r = build_tree(pair.r.records, 2048)
    tree_s = build_tree(pair.s.records, 2048)
    # The sweep algorithms assume nodes in plane-sweep order
    # (Section 4.2's "maintained" regime).
    tree_r.sort_all_nodes()
    tree_s.sort_all_nodes()

    headers = ["algorithm", "buffer", "disk accesses", "comparisons",
               "est. time", "I/O share"]
    rows = []
    for algorithm in ("sj1", "sj2", "sj3", "sj4", "sj5"):
        for buffer_kb in (0, 32, 128):
            result = spatial_join(tree_r, tree_s,
                                  spec=JoinSpec(algorithm=algorithm, buffer_kb=buffer_kb))
            estimate = PAPER_COST_MODEL.estimate(result.stats)
            rows.append([
                result.stats.algorithm,
                f"{buffer_kb} KB",
                f"{result.stats.disk_accesses:,}",
                f"{result.stats.comparisons.total:,}",
                f"{estimate.total_seconds:.2f}s",
                f"{estimate.io_fraction:.0%}",
            ])
        rows.append([""] * len(headers))
    print(format_table(headers, rows[:-1]))

    best = spatial_join(tree_r, tree_s,
                        spec=JoinSpec(algorithm="sj4", buffer_kb=128))
    base = spatial_join(tree_r, tree_s,
                        spec=JoinSpec(algorithm="sj1", buffer_kb=128))
    speedup = (PAPER_COST_MODEL.estimate(base.stats).total_seconds
               / PAPER_COST_MODEL.estimate(best.stats).total_seconds)
    print(f"\nSJ4 is estimated {speedup:.1f}x faster than SJ1 at this "
          f"scale ({len(best)} result pairs).")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.03)
