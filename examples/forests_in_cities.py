"""The paper's motivating GIS scenario: "find all forests in a city".

Section 1 motivates spatial joins with the relations *Forests* and
*Cities* and the window-restricted query "For all cities not further
away than 100 km from Munich, find all forests which are in a city".

This example runs the full two-step pipeline on synthetic region data:

1. filter step  — MBR-spatial-join of the two R*-trees (SJ4),
2. refinement   — exact polygon intersection (ID-spatial-join),
3. object join  — the intersection polygons and their areas,
4. the window-restricted variant around a "Munich" point.

Run with::

    python examples/forests_in_cities.py
"""

from repro import (RStarTree, RTreeParams, Rect, id_spatial_join,
                   object_spatial_join, spatial_join)
from repro.core import JoinSpec, WindowQueryEngine
from repro.data import regions


def main() -> None:
    # Two region relations over the same 100 km x 100 km world (the
    # generator's default world is 100,000 units on a side; read a unit
    # as one metre).
    cities = regions(600, seed=1, name="cities")
    forests = regions(900, seed=2, name="forests")

    params = RTreeParams.from_page_size(2048)
    cities_tree = RStarTree(params)
    forests_tree = RStarTree(params)
    for rect, ref in cities.records:
        cities_tree.insert(rect, ref)
    for rect, ref in forests.records:
        forests_tree.insert(rect, ref)

    # --- Filter step: which forest MBRs intersect which city MBRs? ---
    candidates = spatial_join(forests_tree, cities_tree,
                              spec=JoinSpec(algorithm="sj4", buffer_kb=64))
    print(f"filter step   : {len(candidates)} candidate "
          f"(forest, city) pairs, {candidates.stats.disk_accesses} "
          f"disk accesses")

    # --- Refinement step: exact polygon intersection. ---
    survivors, refinement = id_spatial_join(
        candidates.pairs, forests.objects, cities.objects)
    print(f"refinement    : {refinement.survivors} real pairs "
          f"({refinement.false_hit_ratio:.0%} of the MBR candidates "
          f"were false hits)")

    # --- Object join: compute the overlapping forest-in-city areas. ---
    results, _ = object_spatial_join(survivors[:200], forests.objects,
                                     cities.objects)
    total_area = sum(r.region.area() for r in results
                     if r.region is not None)
    print(f"object join   : {len(results)} intersection geometries, "
          f"{total_area / 1e6:.1f} km^2 of forest inside cities "
          f"(first 200 pairs)")

    # --- The window-restricted query of the introduction. ---
    munich = (50_000.0, 50_000.0)
    radius = 25_000.0               # "not further away than 25 km"
    window = Rect(munich[0] - radius, munich[1] - radius,
                  munich[0] + radius, munich[1] + radius)
    engine = WindowQueryEngine(cities_tree, buffer_kb=32)
    nearby_cities = set(engine.query(window).refs)
    near_pairs = [(f, c) for f, c in survivors if c in nearby_cities]
    print(f"window variant: {len(nearby_cities)} cities within "
          f"{radius / 1000:.0f} km of 'Munich', containing "
          f"{len(near_pairs)} forest intersections")


if __name__ == "__main__":
    main()
