"""Quickstart: index two spatial relations and join them.

Run with::

    python examples/quickstart.py
"""

from repro import JoinSpec, RStarTree, RTreeParams, Rect, spatial_join
from repro.costmodel import PAPER_COST_MODEL
from repro.data import uniform_rects


def main() -> None:
    # 1. Two spatial relations: lists of (MBR, object id) records.
    #    Here they are synthetic; any source of rectangles works.
    relation_r = uniform_rects(5000, seed=1, max_width=800, max_height=800)
    relation_s = uniform_rects(5000, seed=2, max_width=800, max_height=800)

    # 2. Index each relation with an R*-tree.  The page size determines
    #    the node capacity M (2 KByte -> M = 102, exactly as in the
    #    paper's Table 1).
    params = RTreeParams.from_page_size(2048)
    tree_r = RStarTree(params)
    tree_s = RStarTree(params)
    for rect, ref in relation_r:
        tree_r.insert(rect, ref)
    for rect, ref in relation_s:
        tree_s.insert(rect, ref)
    print(f"indexed {len(tree_r)} + {len(tree_s)} rectangles, "
          f"tree heights {tree_r.height}/{tree_s.height}")

    # 3. MBR-spatial-join.  SJ4 (plane-sweep read schedule + pinning) is
    #    the paper's overall winner and the default.
    result = spatial_join(tree_r, tree_s,
                          spec=JoinSpec(algorithm="sj4", buffer_kb=128))
    print(f"join produced {len(result)} intersecting pairs")

    # 4. Every join carries the paper's performance counters ...
    stats = result.stats
    print(f"disk accesses : {stats.disk_accesses:,}")
    print(f"comparisons   : {stats.comparisons.total:,}")

    # 5. ... which the paper's cost model turns into time estimates.
    estimate = PAPER_COST_MODEL.estimate(stats)
    print(f"estimated time: {estimate.total_seconds:.2f}s "
          f"({estimate.io_fraction:.0%} I/O)")

    # 6. A single window query, as used by the filter step.
    window = Rect(10_000, 10_000, 20_000, 20_000)
    matches = tree_r.window_query(window)
    print(f"window query  : {len(matches)} objects in {window}")


if __name__ == "__main__":
    main()
