"""Persisting an R*-tree to real fixed-size pages and reloading it.

Demonstrates the storage layer end to end:

* rectangle records written to / read from a binary file,
* a built tree serialized into a page file (`FilePageStore`) and
  reloaded into a fully operational tree,
* joins on the reloaded trees produce identical results.

Run with::

    python examples/persistence_and_recovery.py
"""

import os
import tempfile

from repro import (RStarTree, RTreeParams, load_tree, save_tree,
                   spatial_join, validate_rtree)
from repro.data import clustered_rects, load_records, save_records
from repro.core import JoinSpec


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="repro-demo-")
    print(f"working in {workdir}")

    # --- Export and re-import the raw records. ---
    records = clustered_rects(4000, seed=5, clusters=12)
    records_path = os.path.join(workdir, "parcels.rct")
    save_records(records, records_path)
    reloaded_records = load_records(records_path)
    assert reloaded_records == records
    size_kb = os.path.getsize(records_path) / 1024
    print(f"records file  : {len(records):,} records, {size_kb:.0f} KiB")

    # --- Build, validate and persist the tree. ---
    params = RTreeParams.from_page_size(2048)
    tree = RStarTree(params)
    for rect, ref in reloaded_records:
        tree.insert(rect, ref)
    validate_rtree(tree)
    tree_path = os.path.join(workdir, "parcels.rtree")
    pages = save_tree(tree, tree_path)
    size_kb = os.path.getsize(tree_path) / 1024
    print(f"tree file     : {pages} pages, {size_kb:.0f} KiB, "
          f"height {tree.height}")

    # --- Reload and verify behaviour is identical. ---
    reopened = load_tree(tree_path)
    validate_rtree(reopened)
    other = RStarTree(params)
    for rect, ref in clustered_rects(4000, seed=6, clusters=12):
        other.insert(rect, ref)

    before = spatial_join(tree, other,
                          spec=JoinSpec(algorithm="sj4", buffer_kb=64)).pair_set()
    after = spatial_join(reopened, other,
                         spec=JoinSpec(algorithm="sj4", buffer_kb=64)).pair_set()
    assert before == after
    print(f"verification  : join of reloaded tree matches "
          f"({len(after):,} pairs)")

    # --- The reloaded tree remains fully updatable. ---
    from repro import Rect
    reopened.insert(Rect(0, 0, 10, 10), 999_999)
    assert 999_999 in reopened.window_query(Rect(0, 0, 20, 20))
    print("update        : reloaded tree accepts inserts")

    for name in os.listdir(workdir):
        os.unlink(os.path.join(workdir, name))
    os.rmdir(workdir)
    print("cleaned up")


if __name__ == "__main__":
    main()
